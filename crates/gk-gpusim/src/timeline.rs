//! A multi-stream timeline scheduler with cross-stream dependencies.
//!
//! GateKeeper-GPU's host code keeps three kinds of work in flight at once
//! (§3.4): asynchronous prefetches of the *next* input buffers, the kernel over
//! the *current* batch, and result read-back of the *previous* batch, each on
//! its own CUDA stream chained by events. [`Timeline`] models exactly that: a
//! set of [`Stream`]s that all start at time zero, [`Event`]s recorded on one
//! stream and waited on by another, and a **makespan** — the completion time of
//! the slowest stream *after* all cross-stream waits have been applied — in
//! place of summing each stream's cursor independently.
//!
//! The scheduler is purely simulated time: callers enqueue modelled durations
//! and dependencies, and read back how long the overlapped execution takes
//! versus the serialized sum of all enqueued work.

use crate::stream::{Event, Stream};
use serde::{Deserialize, Serialize};

/// Handle to one stream inside a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamId(usize);

/// Handle to one shared interconnect link inside a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkId(usize);

/// A shared interconnect link with FIFO arbitration.
///
/// Streams issue transfers against a link via [`Timeline::enqueue_transfer`];
/// while one transfer occupies the link, a transfer arriving from *another*
/// stream stalls until the link frees up. Serving requests back-to-back at the
/// full link rate moves the same aggregate bytes per second as fair
/// bandwidth-splitting would, but with deterministic per-transfer completion
/// times — which is what the contention model needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Name for reporting (e.g. `"pcie-root"`).
    pub name: String,
    /// Link bandwidth in GB/s (per direction).
    pub bandwidth_gb_per_s: f64,
    busy_until_seconds: f64,
    busy_seconds: f64,
    bytes_moved: u64,
    wait_seconds: f64,
    transfers: u64,
}

impl Link {
    /// Time to move `bytes` across this link when it is free, in seconds.
    /// Identical to [`crate::device::PcieLink::transfer_seconds`] so an
    /// uncontended link reproduces the PCIe model bit-for-bit.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gb_per_s * 1e9)
    }

    /// Total seconds the link spent moving bytes.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_seconds
    }

    /// Total bytes moved over the link.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total seconds transfers stalled waiting for the link to free up.
    /// Zero on an uncontended link.
    pub fn wait_seconds(&self) -> f64 {
        self.wait_seconds
    }

    /// Number of transfers served.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Fraction of `horizon_seconds` the link spent busy (0 when the horizon
    /// is empty).
    pub fn utilization(&self, horizon_seconds: f64) -> f64 {
        if horizon_seconds > 0.0 {
            self.busy_seconds / horizon_seconds
        } else {
            0.0
        }
    }
}

/// A set of concurrent streams chained by events, with makespan accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    streams: Vec<Stream>,
    links: Vec<Link>,
    /// Total duration of real operations enqueued (waits excluded): what the
    /// same work would cost executed back-to-back on a single stream.
    serialized_seconds: f64,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Adds a stream; all streams start at time zero.
    pub fn add_stream(&mut self, name: impl Into<String>) -> StreamId {
        self.streams.push(Stream::new(name));
        StreamId(self.streams.len() - 1)
    }

    /// Enqueues `seconds` of work on a stream and returns the completion event,
    /// ready to be waited on from any other stream.
    pub fn enqueue(&mut self, stream: StreamId, label: impl Into<String>, seconds: f64) -> Event {
        let s = &mut self.streams[stream.0];
        s.enqueue(label, seconds);
        self.serialized_seconds += seconds.max(0.0);
        s.record_event()
    }

    /// Chains `stream` behind `event` (recorded on any stream): subsequent work
    /// on `stream` starts no earlier than the event. Idle gaps are recorded on
    /// the stream under `label` for inspection.
    pub fn wait_event(&mut self, stream: StreamId, label: impl Into<String>, event: &Event) {
        self.streams[stream.0].wait_event(label, event);
    }

    /// Adds a shared interconnect link with the given per-direction bandwidth.
    pub fn add_link(&mut self, name: impl Into<String>, bandwidth_gb_per_s: f64) -> LinkId {
        assert!(
            bandwidth_gb_per_s > 0.0,
            "link bandwidth must be positive, got {bandwidth_gb_per_s}"
        );
        self.links.push(Link {
            name: name.into(),
            bandwidth_gb_per_s,
            busy_until_seconds: 0.0,
            busy_seconds: 0.0,
            bytes_moved: 0,
            wait_seconds: 0.0,
            transfers: 0,
        });
        LinkId(self.links.len() - 1)
    }

    /// Enqueues a transfer of `bytes` on `stream` over the shared `link` and
    /// returns the completion event.
    ///
    /// The transfer starts at the later of the stream's cursor and the moment
    /// the link frees up (FIFO in enqueue order across all streams). When the
    /// link is the constraint, the stall is recorded on the stream as an idle
    /// gap labelled `"link wait: <label>"` and accounted in
    /// [`Link::wait_seconds`]. On a free link this degenerates to
    /// `enqueue(stream, label, link.transfer_seconds(bytes))` exactly, so
    /// uncontended timing is unchanged from the plain-stream model.
    pub fn enqueue_transfer(
        &mut self,
        stream: StreamId,
        link: LinkId,
        label: impl Into<String>,
        bytes: u64,
    ) -> Event {
        let label = label.into();
        let l = &mut self.links[link.0];
        let duration = l.transfer_seconds(bytes);
        let s = &mut self.streams[stream.0];
        if l.busy_until_seconds > s.synchronize() {
            let stall = l.busy_until_seconds - s.synchronize();
            s.wait_until(format!("link wait: {label}"), l.busy_until_seconds);
            l.wait_seconds += stall;
        }
        s.enqueue(label, duration);
        self.serialized_seconds += duration.max(0.0);
        l.busy_until_seconds = s.synchronize();
        l.busy_seconds += duration.max(0.0);
        l.bytes_moved += bytes;
        l.transfers += 1;
        s.record_event()
    }

    /// The links, in creation order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// One link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// The streams, in creation order.
    pub fn streams(&self) -> &[Stream] {
        &self.streams
    }

    /// One stream by id.
    pub fn stream(&self, id: StreamId) -> &Stream {
        &self.streams[id.0]
    }

    /// Completion time of the whole timeline: the slowest stream's cursor after
    /// every cross-stream wait has been applied. This is the overlapped
    /// wall-clock cost the multi-stream prefetching of §3.4 is after.
    pub fn makespan_seconds(&self) -> f64 {
        self.streams
            .iter()
            .map(|s| s.synchronize())
            .fold(0.0, f64::max)
    }

    /// What the same operations would cost executed back-to-back on one stream
    /// (waits contribute nothing). Always ≥ the makespan.
    pub fn serialized_seconds(&self) -> f64 {
        self.serialized_seconds
    }

    /// Time saved by overlapping versus serializing, in seconds.
    pub fn overlap_savings_seconds(&self) -> f64 {
        (self.serialized_seconds() - self.makespan_seconds()).max(0.0)
    }

    /// Total ill-formed durations saturated to zero across all streams (see
    /// [`Stream::anomalies`]). Non-zero means the makespan and serialized sum
    /// are lower bounds: a release build absorbed what a debug build would
    /// have asserted on.
    pub fn anomalies(&self) -> u64 {
        self.streams.iter().map(|s| s.anomalies()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_streams_overlap_fully() {
        let mut tl = Timeline::new();
        let a = tl.add_stream("a");
        let b = tl.add_stream("b");
        tl.enqueue(a, "x", 1.0);
        tl.enqueue(b, "y", 0.7);
        assert_eq!(tl.makespan_seconds(), 1.0);
        assert!((tl.serialized_seconds() - 1.7).abs() < 1e-12);
        assert!((tl.overlap_savings_seconds() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cross_stream_dependencies_serialize_the_chain() {
        // h2d -> kernel -> d2h for one batch: no overlap is possible, so the
        // makespan equals the serialized sum.
        let mut tl = Timeline::new();
        let h2d = tl.add_stream("h2d");
        let kernel = tl.add_stream("kernel");
        let d2h = tl.add_stream("d2h");
        let up = tl.enqueue(h2d, "copy", 0.3);
        tl.wait_event(kernel, "wait copy", &up);
        let done = tl.enqueue(kernel, "kernel", 0.5);
        tl.wait_event(d2h, "wait kernel", &done);
        tl.enqueue(d2h, "readback", 0.2);
        assert!((tl.makespan_seconds() - 1.0).abs() < 1e-12);
        assert!((tl.serialized_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_batches_beat_the_serialized_sum() {
        // Two batches, three stages each: stage i of batch 1 overlaps stage
        // i+1 of batch 0, the classic software-pipeline diagram.
        let mut tl = Timeline::new();
        let h2d = tl.add_stream("h2d");
        let kernel = tl.add_stream("kernel");
        let d2h = tl.add_stream("d2h");
        for batch in 0..2 {
            let up = tl.enqueue(h2d, format!("copy {batch}"), 0.3);
            tl.wait_event(kernel, format!("wait copy {batch}"), &up);
            let done = tl.enqueue(kernel, format!("kernel {batch}"), 0.5);
            tl.wait_event(d2h, format!("wait kernel {batch}"), &done);
            tl.enqueue(d2h, format!("readback {batch}"), 0.2);
        }
        // Serialized: 2.0 s. Overlapped: 0.3 + 0.5 + 0.5 + 0.2 = 1.5 s.
        assert!((tl.serialized_seconds() - 2.0).abs() < 1e-12);
        assert!((tl.makespan_seconds() - 1.5).abs() < 1e-12);
        assert!(tl.overlap_savings_seconds() > 0.0);
    }

    #[test]
    fn streams_are_inspectable() {
        let mut tl = Timeline::new();
        let a = tl.add_stream("h2d");
        let b = tl.add_stream("kernel");
        let up = tl.enqueue(a, "copy", 0.1);
        tl.wait_event(b, "wait copy", &up);
        tl.enqueue(b, "kernel", 0.2);
        assert_eq!(tl.streams().len(), 2);
        assert_eq!(tl.stream(a).name, "h2d");
        // The kernel stream recorded the wait gap and the kernel op.
        assert_eq!(tl.stream(b).len(), 2);
    }

    #[test]
    fn uncontended_transfer_matches_plain_enqueue_exactly() {
        // One stream, one link: enqueue_transfer must be bit-identical to a
        // plain enqueue of transfer_seconds(bytes) — the contention-off
        // equivalence the topology model relies on.
        let bw = 12.608;
        let bytes = 3_145_728u64;
        let mut with_link = Timeline::new();
        let s = with_link.add_stream("h2d");
        let l = with_link.add_link("pcie", bw);
        let done = with_link.enqueue_transfer(s, l, "copy", bytes);
        let mut plain = Timeline::new();
        let p = plain.add_stream("h2d");
        let reference = plain.enqueue(p, "copy", bytes as f64 / (bw * 1e9));
        assert_eq!(done.seconds(), reference.seconds());
        assert_eq!(with_link.makespan_seconds(), plain.makespan_seconds());
        assert_eq!(with_link.link(l).wait_seconds(), 0.0);
        assert_eq!(with_link.link(l).bytes_moved(), bytes);
        assert_eq!(with_link.link(l).transfers(), 1);
    }

    #[test]
    fn concurrent_transfers_on_a_shared_link_serialize() {
        // Two streams, each wanting 1 GB at 1 GB/s at time zero: on private
        // links they finish together at 1 s, on a shared link the second
        // stalls behind the first and finishes at 2 s.
        let gb = 1_000_000_000u64;
        let mut tl = Timeline::new();
        let a = tl.add_stream("dev0-h2d");
        let b = tl.add_stream("dev1-h2d");
        let shared = tl.add_link("root", 1.0);
        let first = tl.enqueue_transfer(a, shared, "copy a", gb);
        let second = tl.enqueue_transfer(b, shared, "copy b", gb);
        assert!((first.seconds() - 1.0).abs() < 1e-12);
        assert!((second.seconds() - 2.0).abs() < 1e-12);
        assert!((tl.makespan_seconds() - 2.0).abs() < 1e-12);
        let link = tl.link(shared);
        assert!((link.busy_seconds() - 2.0).abs() < 1e-12);
        assert!((link.wait_seconds() - 1.0).abs() < 1e-12);
        assert_eq!(link.bytes_moved(), 2 * gb);
        // The stall is visible on the stalled stream as a labelled idle gap.
        assert!(tl
            .stream(b)
            .operations()
            .iter()
            .any(|(l, gap)| l == "link wait: copy b" && (*gap - 1.0).abs() < 1e-12));
        // Utilization over the makespan is 100%: the link never idled.
        assert!((link.utilization(tl.makespan_seconds()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn separate_links_do_not_interfere() {
        let gb = 1_000_000_000u64;
        let mut tl = Timeline::new();
        let a = tl.add_stream("dev0-h2d");
        let b = tl.add_stream("dev1-h2d");
        let la = tl.add_link("pcie0", 1.0);
        let lb = tl.add_link("pcie1", 1.0);
        tl.enqueue_transfer(a, la, "copy a", gb);
        tl.enqueue_transfer(b, lb, "copy b", gb);
        assert!((tl.makespan_seconds() - 1.0).abs() < 1e-12);
        assert_eq!(tl.link(la).wait_seconds(), 0.0);
        assert_eq!(tl.link(lb).wait_seconds(), 0.0);
        assert_eq!(tl.links().len(), 2);
    }

    #[test]
    fn link_frees_up_between_staggered_transfers() {
        // The second transfer arrives after the first completed: no stall.
        let mut tl = Timeline::new();
        let a = tl.add_stream("a");
        let b = tl.add_stream("b");
        let shared = tl.add_link("root", 1.0);
        tl.enqueue_transfer(a, shared, "early", 500_000_000);
        tl.enqueue(b, "long host prep", 0.8);
        let late = tl.enqueue_transfer(b, shared, "late", 500_000_000);
        assert!((late.seconds() - 1.3).abs() < 1e-12);
        assert_eq!(tl.link(shared).wait_seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_links_panic() {
        Timeline::new().add_link("broken", 0.0);
    }

    #[test]
    fn empty_timeline_has_zero_makespan() {
        let tl = Timeline::new();
        assert_eq!(tl.makespan_seconds(), 0.0);
        assert_eq!(tl.serialized_seconds(), 0.0);
        assert_eq!(tl.anomalies(), 0);
    }

    #[test]
    fn healthy_timelines_report_zero_anomalies() {
        let mut tl = Timeline::new();
        let a = tl.add_stream("a");
        let b = tl.add_stream("b");
        tl.enqueue(a, "x", 1.0);
        tl.enqueue(b, "y", 0.0);
        assert_eq!(tl.anomalies(), 0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_clamps_surface_as_timeline_anomalies() {
        let mut tl = Timeline::new();
        let a = tl.add_stream("a");
        let b = tl.add_stream("b");
        tl.enqueue(a, "bad", -2.0);
        tl.enqueue(b, "also bad", -1.0);
        tl.enqueue(b, "fine", 0.5);
        assert_eq!(tl.anomalies(), 2);
        // The clamped operations contribute nothing to either accounting.
        assert_eq!(tl.makespan_seconds(), 0.5);
        assert_eq!(tl.serialized_seconds(), 0.5);
    }
}
