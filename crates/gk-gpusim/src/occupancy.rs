//! The CUDA occupancy calculator.
//!
//! Warp occupancy — the ratio of resident warps to the maximum the SM supports —
//! determines how well the SM can hide memory latency. The paper works through the
//! arithmetic for the GateKeeper-GPU kernel in §5.4.1: the kernel needs 40–48
//! registers per thread; with 48 registers the best achievable occupancy would be
//! 63% but only with ≤ 256 threads per block, and because small blocks shrink the
//! batch per transfer, GateKeeper-GPU instead runs 1024-thread blocks at a
//! theoretical occupancy of 50%. This module reproduces those numbers from first
//! principles (register-file, warp-slot, block-slot and shared-memory limits).

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Per-kernel resource usage that determines occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelResources {
    /// Registers used per thread.
    pub registers_per_thread: u32,
    /// Threads per block the kernel is launched with.
    pub threads_per_block: u32,
    /// Dynamic + static shared memory per block, in bytes.
    pub shared_memory_per_block: u32,
}

impl KernelResources {
    /// The GateKeeper-GPU kernel configuration of §5.4.1: 48 registers per thread,
    /// maximum-size blocks, no shared memory.
    pub fn gatekeeper_gpu(device: &DeviceSpec) -> KernelResources {
        KernelResources {
            registers_per_thread: 48,
            threads_per_block: device.max_threads_per_block,
            shared_memory_per_block: 0,
        }
    }
}

/// What ended up limiting the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimit {
    /// The register file ran out first.
    Registers,
    /// The warp slots ran out first.
    Warps,
    /// The block slots ran out first.
    Blocks,
    /// Shared memory ran out first.
    SharedMemory,
}

/// Result of the occupancy computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyResult {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub active_warps_per_sm: u32,
    /// Maximum warps the SM supports.
    pub max_warps_per_sm: u32,
    /// `active_warps / max_warps`.
    pub occupancy: f64,
    /// The resource that limited residency.
    pub limiting_factor: OccupancyLimit,
}

/// Computes theoretical occupancy for a kernel on a device.
pub fn theoretical_occupancy(device: &DeviceSpec, resources: &KernelResources) -> OccupancyResult {
    let warp_size = device.warp_size.max(1);
    let threads_per_block = resources
        .threads_per_block
        .clamp(1, device.max_threads_per_block);
    let warps_per_block = threads_per_block.div_ceil(warp_size);

    // Register limit: registers are allocated per warp, rounded up to the
    // allocation granularity.
    let regs_per_warp_raw = resources.registers_per_thread.max(1) * warp_size;
    let granularity = device.register_allocation_granularity.max(1);
    let regs_per_warp = regs_per_warp_raw.div_ceil(granularity) * granularity;
    let regs_per_block = regs_per_warp * warps_per_block;
    let blocks_by_regs = device
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);

    // Warp-slot limit.
    let blocks_by_warps = device.max_warps_per_sm / warps_per_block.max(1);

    // Block-slot limit.
    let blocks_by_slots = device.max_blocks_per_sm;

    // Shared-memory limit.
    let blocks_by_smem = device
        .shared_memory_per_sm
        .checked_div(resources.shared_memory_per_block)
        .unwrap_or(u32::MAX);

    let candidates = [
        (blocks_by_regs, OccupancyLimit::Registers),
        (blocks_by_warps, OccupancyLimit::Warps),
        (blocks_by_slots, OccupancyLimit::Blocks),
        (blocks_by_smem, OccupancyLimit::SharedMemory),
    ];
    // Manual first-minimum fold over the fixed candidate array: `min_by_key`
    // would hand back an `Option` the analyzer bans unwrapping.
    let mut best = candidates[0];
    for candidate in candidates.iter().skip(1) {
        if candidate.0 < best.0 {
            best = *candidate;
        }
    }
    let (blocks_per_sm, limiting_factor) = best;

    let active_warps = blocks_per_sm * warps_per_block;
    let active_warps = active_warps.min(device.max_warps_per_sm);
    OccupancyResult {
        blocks_per_sm,
        active_warps_per_sm: active_warps,
        max_warps_per_sm: device.max_warps_per_sm,
        occupancy: active_warps as f64 / device.max_warps_per_sm as f64,
        limiting_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §5.4.1: "The maximum theoretical occupancy that can be reached with 48
    /// registers per thread is 63%, but the number of threads per block should be at
    /// most 256."
    #[test]
    fn forty_eight_registers_at_256_threads_gives_63_percent() {
        let device = DeviceSpec::gtx_1080_ti();
        let result = theoretical_occupancy(
            &device,
            &KernelResources {
                registers_per_thread: 48,
                threads_per_block: 256,
                shared_memory_per_block: 0,
            },
        );
        assert_eq!(result.active_warps_per_sm, 40);
        assert!((result.occupancy - 0.625).abs() < 1e-9);
        assert_eq!(result.limiting_factor, OccupancyLimit::Registers);
    }

    /// §5.4.1: "GateKeeper-GPU's theoretical warp occupancy is 50%" (with 48
    /// registers and maximum-size 1024-thread blocks).
    #[test]
    fn gatekeeper_configuration_gives_50_percent() {
        let device = DeviceSpec::gtx_1080_ti();
        let result = theoretical_occupancy(&device, &KernelResources::gatekeeper_gpu(&device));
        assert_eq!(result.blocks_per_sm, 1);
        assert_eq!(result.active_warps_per_sm, 32);
        assert!((result.occupancy - 0.5).abs() < 1e-9);
    }

    /// §5.4.1: "the maximum number of registers per thread is 32 for 100% occupancy
    /// while using all threads in a warp."
    #[test]
    fn thirty_two_registers_allows_full_occupancy() {
        let device = DeviceSpec::gtx_1080_ti();
        let result = theoretical_occupancy(
            &device,
            &KernelResources {
                registers_per_thread: 32,
                threads_per_block: 1024,
                shared_memory_per_block: 0,
            },
        );
        assert!((result.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kepler_reaches_50_percent_with_gatekeeper_kernel() {
        let device = DeviceSpec::tesla_k20x();
        let result = theoretical_occupancy(&device, &KernelResources::gatekeeper_gpu(&device));
        assert!(result.occupancy >= 0.45 && result.occupancy <= 0.55);
    }

    #[test]
    fn shared_memory_can_become_the_limit() {
        let device = DeviceSpec::gtx_1080_ti();
        let result = theoretical_occupancy(
            &device,
            &KernelResources {
                registers_per_thread: 16,
                threads_per_block: 128,
                shared_memory_per_block: 48 * 1024,
            },
        );
        assert_eq!(result.limiting_factor, OccupancyLimit::SharedMemory);
        assert!(result.occupancy < 0.5);
    }

    #[test]
    fn small_blocks_can_be_limited_by_block_slots() {
        let device = DeviceSpec::gtx_1080_ti();
        let result = theoretical_occupancy(
            &device,
            &KernelResources {
                registers_per_thread: 16,
                threads_per_block: 32,
                shared_memory_per_block: 0,
            },
        );
        assert_eq!(result.limiting_factor, OccupancyLimit::Blocks);
        assert_eq!(result.blocks_per_sm, device.max_blocks_per_sm);
    }

    #[test]
    fn occupancy_is_monotone_in_register_pressure() {
        let device = DeviceSpec::gtx_1080_ti();
        let mut last = 2.0;
        for regs in [16u32, 32, 48, 64, 96, 128] {
            let result = theoretical_occupancy(
                &device,
                &KernelResources {
                    registers_per_thread: regs,
                    threads_per_block: 256,
                    shared_memory_per_block: 0,
                },
            );
            assert!(result.occupancy <= last + 1e-12, "regs = {regs}");
            last = result.occupancy;
        }
    }

    #[test]
    fn occupancy_never_exceeds_one() {
        let device = DeviceSpec::gtx_1080_ti();
        for regs in [1u32, 8, 200] {
            for tpb in [32u32, 64, 512, 1024] {
                let result = theoretical_occupancy(
                    &device,
                    &KernelResources {
                        registers_per_thread: regs,
                        threads_per_block: tpb,
                        shared_memory_per_block: 0,
                    },
                );
                assert!(result.occupancy <= 1.0 && result.occupancy >= 0.0);
            }
        }
    }
}
