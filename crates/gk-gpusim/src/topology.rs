//! Interconnect topology: which devices share which host links.
//!
//! The paper's Figure 8 multi-GPU scaling implicitly assumes every board owns a
//! private, uncontended PCIe link to the host — eight GTX 1080 Ti boards each
//! moving batches at the full ×16 rate. Real eight-GPU chassis do not look like
//! that: boards hang off PLX switches whose upstream port is a single ×16 link,
//! or share the root complex's host bandwidth outright. This module models that
//! wiring: a [`Topology`] attaches each device to a [`LinkSpec`], and
//! [`simulate_contended`] replays per-device pipeline work on a [`Timeline`]
//! whose shared links serialize concurrent transfers (FIFO at the full link
//! rate) instead of letting them overlap for free.
//!
//! The model is deliberately symmetric with the uncontended one: a transfer on
//! a free link costs exactly
//! [`PcieLink::transfer_seconds`](crate::device::PcieLink::transfer_seconds),
//! so an [`TopologyKind::Independent`] topology reproduces the plain
//! per-device pipeline numbers bit-for-bit and all contention shows up as
//! explicit link-wait gaps.

use crate::device::DeviceSpec;
use crate::stream::Event;
use crate::timeline::{LinkId, StreamId, Timeline};
use serde::{Deserialize, Serialize};

/// Aggregate per-direction bandwidth of the NVLink-style fabric option, in
/// GB/s (NVLink 2.0 ballpark: 6 sublinks × 25 GB/s raw, derated to an
/// effective ~75 GB/s per direction).
pub const NVLINK_BANDWIDTH_GB_PER_S: f64 = 75.0;

/// Symbolic interconnect topology selector.
///
/// Purely structural — no bandwidths live here (so the type stays `Eq` and can
/// sit in `FilterConfig`); link rates are derived from the attached devices'
/// PCIe specs (or the NVLink constant) when the [`Topology`] is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TopologyKind {
    /// Every device owns a private host link at its full PCIe rate — the
    /// paper's implicit assumption, and the default.
    #[default]
    Independent,
    /// All devices share one host root-complex link (a single ×16 upstream
    /// port): the worst case for the raw-transfer encode path.
    SharedRoot,
    /// Devices hang off PCIe switches in consecutive groups of `fanout`; each
    /// group shares its switch's single upstream link.
    Switch {
        /// Devices per switch (the last switch may hold fewer).
        fanout: usize,
    },
    /// An NVLink-style shared fabric: still one shared link, but at
    /// [`NVLINK_BANDWIDTH_GB_PER_S`] — fat enough that contention is mostly
    /// invisible.
    NvLink,
}

impl TopologyKind {
    /// Short label for tables and JSON (`private`, `shared`, `switch:4`,
    /// `nvlink`).
    pub fn label(&self) -> String {
        match self {
            TopologyKind::Independent => "private".to_string(),
            TopologyKind::SharedRoot => "shared".to_string(),
            TopologyKind::Switch { fanout } => format!("switch:{fanout}"),
            TopologyKind::NvLink => "nvlink".to_string(),
        }
    }
}

impl std::str::FromStr for TopologyKind {
    type Err = String;

    /// Parses the harness spelling: `private`/`independent`, `shared`/`root`,
    /// `switch` (fanout 4), `switch:N`, `nvlink`.
    fn from_str(s: &str) -> Result<TopologyKind, String> {
        match s {
            "private" | "independent" => Ok(TopologyKind::Independent),
            "shared" | "root" | "shared-root" => Ok(TopologyKind::SharedRoot),
            "switch" => Ok(TopologyKind::Switch { fanout: 4 }),
            "nvlink" => Ok(TopologyKind::NvLink),
            other => {
                if let Some(n) = other.strip_prefix("switch:") {
                    let fanout: usize =
                        n.parse().map_err(|_| format!("bad switch fanout `{n}`"))?;
                    if fanout == 0 {
                        return Err("switch fanout must be >= 1".to_string());
                    }
                    Ok(TopologyKind::Switch { fanout })
                } else {
                    Err(format!(
                        "unknown topology `{other}` (expected private|shared|switch[:N]|nvlink)"
                    ))
                }
            }
        }
    }
}

/// One host link in a topology: a name and a per-direction bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Name for reporting (e.g. `"switch0"`).
    pub name: String,
    /// Per-direction bandwidth in GB/s.
    pub bandwidth_gb_per_s: f64,
}

/// An interconnect topology: links plus a device → link attachment map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    label: String,
    links: Vec<LinkSpec>,
    /// `attach[d]` is the index into `links` of device `d`'s host link.
    attach: Vec<usize>,
}

/// The fattest PCIe rate among a group of devices: a shared upstream port
/// cannot run faster than the best single link hanging off it.
fn group_bandwidth(devices: &[DeviceSpec]) -> f64 {
    devices
        .iter()
        .map(|d| d.pcie.bandwidth_gb_per_s())
        .fold(0.0, f64::max)
}

impl Topology {
    /// Builds the topology selected by `kind` over `devices`.
    pub fn build(kind: TopologyKind, devices: &[DeviceSpec]) -> Topology {
        match kind {
            TopologyKind::Independent => Topology::independent(devices),
            TopologyKind::SharedRoot => Topology::shared_root(devices),
            TopologyKind::Switch { fanout } => Topology::switch(devices, fanout),
            TopologyKind::NvLink => Topology::nvlink(devices),
        }
    }

    /// Every device on its own private link at its full PCIe rate.
    pub fn independent(devices: &[DeviceSpec]) -> Topology {
        assert!(!devices.is_empty(), "a topology needs at least one device");
        Topology {
            label: "private".to_string(),
            links: devices
                .iter()
                .enumerate()
                .map(|(i, d)| LinkSpec {
                    name: format!("pcie{i}"),
                    bandwidth_gb_per_s: d.pcie.bandwidth_gb_per_s(),
                })
                .collect(),
            attach: (0..devices.len()).collect(),
        }
    }

    /// All devices behind one root-complex link.
    pub fn shared_root(devices: &[DeviceSpec]) -> Topology {
        assert!(!devices.is_empty(), "a topology needs at least one device");
        Topology {
            label: "shared".to_string(),
            links: vec![LinkSpec {
                name: "pcie-root".to_string(),
                bandwidth_gb_per_s: group_bandwidth(devices),
            }],
            attach: vec![0; devices.len()],
        }
    }

    /// Devices in consecutive groups of `fanout`, one upstream link per group.
    pub fn switch(devices: &[DeviceSpec], fanout: usize) -> Topology {
        assert!(!devices.is_empty(), "a topology needs at least one device");
        assert!(fanout >= 1, "switch fanout must be >= 1");
        let links: Vec<LinkSpec> = devices
            .chunks(fanout)
            .enumerate()
            .map(|(g, group)| LinkSpec {
                name: format!("switch{g}"),
                bandwidth_gb_per_s: group_bandwidth(group),
            })
            .collect();
        let attach = (0..devices.len()).map(|d| d / fanout).collect();
        Topology {
            label: format!("switch:{fanout}"),
            links,
            attach,
        }
    }

    /// One shared NVLink-style fabric at [`NVLINK_BANDWIDTH_GB_PER_S`].
    pub fn nvlink(devices: &[DeviceSpec]) -> Topology {
        assert!(!devices.is_empty(), "a topology needs at least one device");
        Topology {
            label: "nvlink".to_string(),
            links: vec![LinkSpec {
                name: "nvlink".to_string(),
                bandwidth_gb_per_s: NVLINK_BANDWIDTH_GB_PER_S,
            }],
            attach: vec![0; devices.len()],
        }
    }

    /// An arbitrary topology from explicit links and attachments (for tests
    /// and exotic chassis). `attach[d]` must index into `links`.
    pub fn custom(label: impl Into<String>, links: Vec<LinkSpec>, attach: Vec<usize>) -> Topology {
        assert!(!attach.is_empty(), "a topology needs at least one device");
        assert!(!links.is_empty(), "a topology needs at least one link");
        assert!(
            attach.iter().all(|&l| l < links.len()),
            "attachment indexes a missing link"
        );
        assert!(
            links.iter().all(|l| l.bandwidth_gb_per_s > 0.0),
            "link bandwidth must be positive"
        );
        Topology {
            label: label.into(),
            links,
            attach,
        }
    }

    /// The contention-off twin: every device gets a *private* link at the
    /// bandwidth of the link it is attached to here. Same per-transfer rates,
    /// no sharing — the baseline the contention numbers are compared against.
    pub fn to_independent(&self) -> Topology {
        Topology {
            label: format!("{}+uncontended", self.label),
            links: self
                .attach
                .iter()
                .enumerate()
                .map(|(d, &l)| LinkSpec {
                    name: format!("private{d}"),
                    bandwidth_gb_per_s: self.links[l].bandwidth_gb_per_s,
                })
                .collect(),
            attach: (0..self.attach.len()).collect(),
        }
    }

    /// Number of attached devices.
    pub fn device_count(&self) -> usize {
        self.attach.len()
    }

    /// The links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Index of the link device `d` attaches to.
    pub fn link_of(&self, device: usize) -> usize {
        self.attach[device]
    }

    /// How many devices share device `d`'s link (including itself).
    pub fn sharers(&self, device: usize) -> usize {
        let link = self.attach[device];
        self.attach.iter().filter(|&&l| l == link).count()
    }

    /// Full bandwidth of device `d`'s link, in GB/s.
    pub fn link_bandwidth_gb_per_s(&self, device: usize) -> f64 {
        self.links[self.attach[device]].bandwidth_gb_per_s
    }

    /// Device `d`'s fair share of its link under full contention: link
    /// bandwidth divided by the number of sharers. The weight the
    /// topology-aware sharder feeds on.
    pub fn effective_bandwidth_gb_per_s(&self, device: usize) -> f64 {
        self.link_bandwidth_gb_per_s(device) / self.sharers(device) as f64
    }

    /// True when any link is shared by more than one device.
    pub fn is_contended(&self) -> bool {
        (0..self.device_count()).any(|d| self.sharers(d) > 1)
    }

    /// Human-readable topology label (`private`, `shared`, `switch:4`, …).
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Splits `total` items into contiguous per-device ranges proportional to
/// `weights`, by largest remainder: every weight gets `floor(total·wᵢ/Σw)`
/// items, and the leftovers go one each to the largest fractional parts
/// (ties to the lower index). Non-finite or negative weights count as zero;
/// an all-zero weight vector degrades to the equal front-loaded split of
/// [`MultiGpu::split_work`](crate::multi::MultiGpu::split_work).
///
/// The result is always an exact partition of `0..total`: `n` half-open
/// ranges, back-to-back, first starting at 0, last ending at `total`.
pub fn weighted_partition(total: usize, weights: &[f64]) -> Vec<(usize, usize)> {
    let n = weights.len();
    assert!(n >= 1, "weighted_partition needs at least one weight");
    let sane: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .collect();
    let sum: f64 = sane.iter().sum();
    let mut sizes: Vec<usize> = vec![0; n];
    if sum > 0.0 {
        let mut fractions: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut assigned = 0usize;
        for (i, &w) in sane.iter().enumerate() {
            let exact = total as f64 * (w / sum);
            // Guard the floor against accumulated rounding pushing past total.
            let floor = (exact.floor() as usize).min(total);
            sizes[i] = floor;
            assigned += floor;
            fractions.push((exact - floor as f64, i));
        }
        // Hand the leftover items to the largest fractional parts; ties break
        // to the lower device index so the split is deterministic.
        let mut leftover = total.saturating_sub(assigned);
        fractions.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut at = 0usize;
        while leftover > 0 {
            sizes[fractions[at % n].1] += 1;
            leftover -= 1;
            at += 1;
        }
    } else {
        // Degenerate weights: equal shares, extras front-loaded.
        let base = total / n;
        let remainder = total % n;
        for (i, size) in sizes.iter_mut().enumerate() {
            *size = base + usize::from(i < remainder);
        }
    }
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0usize;
    for size in sizes {
        ranges.push((start, start + size));
        start += size;
    }
    debug_assert_eq!(start, total);
    ranges
}

/// One pipeline chunk's worth of work on one device, as modelled durations and
/// link traffic — the currency [`simulate_contended`] replays on the shared
/// timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChunkLoad {
    /// Host-side prep (+ encode, on the host path) that runs on the H2D stream
    /// before the transfer.
    pub host_seconds: f64,
    /// Bytes prefetched over the host link, per input buffer (reads, refs).
    /// Zero on devices without prefetch support, where migration traffic is
    /// already folded into the kernel stage as page faults.
    pub h2d_bytes: [u64; 2],
    /// Kernel execution time.
    pub kernel_seconds: f64,
    /// Result read-back bytes over the device→host direction.
    pub d2h_bytes: u64,
}

impl ChunkLoad {
    /// Total bytes this chunk moves host→device.
    pub fn total_h2d_bytes(&self) -> u64 {
        self.h2d_bytes.iter().sum()
    }
}

/// Per-link accounting out of a contended run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkUsage {
    /// Link name from the topology.
    pub name: String,
    /// Per-direction bandwidth in GB/s.
    pub bandwidth_gb_per_s: f64,
    /// Devices attached to this link.
    pub devices: usize,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
    /// Seconds the link spent moving bytes (both directions summed).
    pub busy_seconds: f64,
    /// Seconds transfers stalled behind other traffic on this link.
    pub wait_seconds: f64,
    /// Peak per-direction busy fraction of the run's makespan.
    pub utilization: f64,
}

/// Result of replaying per-device pipeline loads on a shared-link timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionRun {
    /// Completion time of the slowest device after link arbitration.
    pub makespan_seconds: f64,
    /// Back-to-back cost of all enqueued work on one stream.
    pub serialized_seconds: f64,
    /// Per-device completion times.
    pub per_device_finish_seconds: Vec<f64>,
    /// Per-device seconds spent stalled on busy links.
    pub per_device_link_wait_seconds: Vec<f64>,
    /// Per-link traffic and stall accounting.
    pub links: Vec<LinkUsage>,
    /// Ill-formed durations clamped inside the timeline (0 when healthy).
    pub anomalies: u64,
}

impl ContentionRun {
    /// Total link-stall seconds across all devices.
    pub fn link_wait_seconds(&self) -> f64 {
        self.per_device_link_wait_seconds.iter().sum()
    }
}

/// Per-device stream handles and pipeline progress inside the event loop.
struct DeviceState {
    h2d: StreamId,
    kernel: StreamId,
    d2h: StreamId,
    next_upload: usize,
    next_d2h: usize,
    kernel_done: Vec<Option<Event>>,
    d2h_done: Vec<Option<Event>>,
}

/// Replays per-device chunk pipelines (`loads[d]` = device `d`'s chunks, in
/// order) on one shared [`Timeline`] where every transfer goes through the
/// device's topology link.
///
/// Each device gets the standard three streams (H2D, kernel, D2H) with the
/// usual chaining — the kernel waits for its chunk's upload, read-back waits
/// for the kernel, and an upload may only start once the buffer slot of chunk
/// `i − slots` has drained. Transfers are granted to links **in global arrival
/// order**: the scheduler repeatedly picks, across all devices, the pending
/// link operation whose transfer becomes ready earliest (ties break to the
/// lower device index, read-backs before uploads), so a link serves requests
/// exactly as a FIFO arbiter would see them arrive. H2D and D2H directions
/// contend separately (PCIe is full duplex).
pub fn simulate_contended(
    topology: &Topology,
    loads: &[Vec<ChunkLoad>],
    slots: usize,
) -> ContentionRun {
    assert_eq!(
        loads.len(),
        topology.device_count(),
        "one chunk list per topology device"
    );
    let slots = slots.max(1);
    let mut tl = Timeline::new();
    let h2d_links: Vec<LinkId> = topology
        .links
        .iter()
        .map(|l| tl.add_link(format!("{}:h2d", l.name), l.bandwidth_gb_per_s))
        .collect();
    let d2h_links: Vec<LinkId> = topology
        .links
        .iter()
        .map(|l| tl.add_link(format!("{}:d2h", l.name), l.bandwidth_gb_per_s))
        .collect();
    let mut devices: Vec<DeviceState> = (0..loads.len())
        .map(|d| {
            let chunks = loads[d].len();
            DeviceState {
                h2d: tl.add_stream(format!("dev{d}-h2d")),
                kernel: tl.add_stream(format!("dev{d}-kernel")),
                d2h: tl.add_stream(format!("dev{d}-d2h")),
                next_upload: 0,
                next_d2h: 0,
                kernel_done: vec![None; chunks],
                d2h_done: vec![None; chunks],
            }
        })
        .collect();
    let mut per_device_wait = vec![0.0f64; loads.len()];

    loop {
        // Pick the link operation whose transfer arrives earliest.
        // Candidate key: (arrival seconds, device index, 0 = read-back / 1 = upload).
        let mut best: Option<(f64, usize, u8)> = None;
        for (d, dev) in devices.iter().enumerate() {
            if dev.next_d2h < dev.next_upload {
                if let Some(done) = dev.kernel_done[dev.next_d2h] {
                    let arrival = tl.stream(dev.d2h).synchronize().max(done.seconds());
                    let key = (arrival, d, 0u8);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            if dev.next_upload < loads[d].len() {
                let slot_free = if dev.next_upload >= slots {
                    dev.d2h_done[dev.next_upload - slots].map(|e| e.seconds())
                } else {
                    Some(0.0)
                };
                if let Some(free_at) = slot_free {
                    let arrival = tl.stream(dev.h2d).synchronize().max(free_at)
                        + loads[d][dev.next_upload].host_seconds;
                    let key = (arrival, d, 1u8);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
        }
        let Some((_, d, op)) = best else { break };
        let dev = &mut devices[d];
        let link = topology.attach[d];
        if op == 1 {
            // Upload: slot gate, host prep, transfers, then the kernel is
            // chained eagerly — kernel streams are private per device, so its
            // start time is fully determined by the upload event.
            let c = dev.next_upload;
            let load = loads[d][c];
            if c >= slots {
                if let Some(drained) = dev.d2h_done[c - slots] {
                    tl.wait_event(dev.h2d, format!("slot wait chunk {c}"), &drained);
                }
            }
            if load.host_seconds > 0.0 {
                tl.enqueue(dev.h2d, format!("host prep chunk {c}"), load.host_seconds);
            }
            let mut uploaded = tl.stream(dev.h2d).record_event();
            for (buf, &bytes) in load.h2d_bytes.iter().enumerate() {
                if bytes > 0 {
                    let waited_before = tl.link(h2d_links[link]).wait_seconds();
                    uploaded = tl.enqueue_transfer(
                        dev.h2d,
                        h2d_links[link],
                        format!("h2d chunk {c} buf {buf}"),
                        bytes,
                    );
                    per_device_wait[d] += tl.link(h2d_links[link]).wait_seconds() - waited_before;
                }
            }
            tl.wait_event(dev.kernel, format!("wait h2d chunk {c}"), &uploaded);
            tl.enqueue(dev.kernel, format!("kernel chunk {c}"), load.kernel_seconds);
            dev.kernel_done[c] = Some(tl.stream(dev.kernel).record_event());
            dev.next_upload += 1;
        } else {
            // Read-back of the oldest kernel-complete chunk.
            let c = dev.next_d2h;
            let load = loads[d][c];
            let Some(done) = dev.kernel_done[c] else {
                unreachable!("read-back granted before its kernel");
            };
            tl.wait_event(dev.d2h, format!("wait kernel chunk {c}"), &done);
            if load.d2h_bytes > 0 {
                let waited_before = tl.link(d2h_links[link]).wait_seconds();
                let ev = tl.enqueue_transfer(
                    dev.d2h,
                    d2h_links[link],
                    format!("d2h chunk {c}"),
                    load.d2h_bytes,
                );
                per_device_wait[d] += tl.link(d2h_links[link]).wait_seconds() - waited_before;
                dev.d2h_done[c] = Some(ev);
            } else {
                dev.d2h_done[c] = Some(tl.stream(dev.d2h).record_event());
            }
            dev.next_d2h += 1;
        }
    }

    let makespan = tl.makespan_seconds();
    let per_device_finish = devices
        .iter()
        .map(|dev| {
            tl.stream(dev.h2d)
                .synchronize()
                .max(tl.stream(dev.kernel).synchronize())
                .max(tl.stream(dev.d2h).synchronize())
        })
        .collect();
    let links = topology
        .links
        .iter()
        .enumerate()
        .map(|(l, spec)| {
            let h2d = tl.link(h2d_links[l]);
            let d2h = tl.link(d2h_links[l]);
            LinkUsage {
                name: spec.name.clone(),
                bandwidth_gb_per_s: spec.bandwidth_gb_per_s,
                devices: topology.attach.iter().filter(|&&a| a == l).count(),
                h2d_bytes: h2d.bytes_moved(),
                d2h_bytes: d2h.bytes_moved(),
                busy_seconds: h2d.busy_seconds() + d2h.busy_seconds(),
                wait_seconds: h2d.wait_seconds() + d2h.wait_seconds(),
                utilization: h2d.utilization(makespan).max(d2h.utilization(makespan)),
            }
        })
        .collect();
    ContentionRun {
        makespan_seconds: makespan,
        serialized_seconds: tl.serialized_seconds(),
        per_device_finish_seconds: per_device_finish,
        per_device_link_wait_seconds: per_device_wait,
        links,
        anomalies: tl.anomalies(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pascal(n: usize) -> Vec<DeviceSpec> {
        vec![DeviceSpec::gtx_1080_ti(); n]
    }

    #[test]
    fn builders_wire_the_expected_shapes() {
        let devices = pascal(8);
        let private = Topology::independent(&devices);
        assert_eq!(private.links().len(), 8);
        assert!(!private.is_contended());
        assert_eq!(private.sharers(3), 1);

        let shared = Topology::shared_root(&devices);
        assert_eq!(shared.links().len(), 1);
        assert!(shared.is_contended());
        assert_eq!(shared.sharers(0), 8);
        assert!(
            (shared.effective_bandwidth_gb_per_s(0) - devices[0].pcie.bandwidth_gb_per_s() / 8.0)
                .abs()
                < 1e-12
        );

        let switch = Topology::switch(&devices, 3);
        assert_eq!(switch.links().len(), 3);
        assert_eq!(switch.sharers(0), 3);
        // The ragged last switch holds two devices.
        assert_eq!(switch.sharers(7), 2);
        assert_eq!(switch.link_of(6), 2);

        let nvlink = Topology::nvlink(&devices);
        assert_eq!(nvlink.link_bandwidth_gb_per_s(0), NVLINK_BANDWIDTH_GB_PER_S);
        assert!(nvlink.is_contended());
    }

    #[test]
    fn build_dispatches_on_kind_and_labels_match() {
        let devices = pascal(4);
        for (kind, label) in [
            (TopologyKind::Independent, "private"),
            (TopologyKind::SharedRoot, "shared"),
            (TopologyKind::Switch { fanout: 2 }, "switch:2"),
            (TopologyKind::NvLink, "nvlink"),
        ] {
            let topo = Topology::build(kind, &devices);
            assert_eq!(topo.label(), label);
            assert_eq!(kind.label(), label);
            assert_eq!(topo.device_count(), 4);
        }
    }

    #[test]
    fn kind_parses_from_harness_spellings() {
        assert_eq!("private".parse(), Ok(TopologyKind::Independent));
        assert_eq!("independent".parse(), Ok(TopologyKind::Independent));
        assert_eq!("shared".parse(), Ok(TopologyKind::SharedRoot));
        assert_eq!("switch".parse(), Ok(TopologyKind::Switch { fanout: 4 }));
        assert_eq!("switch:3".parse(), Ok(TopologyKind::Switch { fanout: 3 }));
        assert_eq!("nvlink".parse(), Ok(TopologyKind::NvLink));
        assert!("switch:0".parse::<TopologyKind>().is_err());
        assert!("mesh".parse::<TopologyKind>().is_err());
    }

    #[test]
    fn to_independent_keeps_rates_but_drops_sharing() {
        let shared = Topology::shared_root(&pascal(4));
        let private = shared.to_independent();
        assert!(!private.is_contended());
        assert_eq!(private.device_count(), 4);
        for d in 0..4 {
            assert_eq!(
                private.link_bandwidth_gb_per_s(d),
                shared.link_bandwidth_gb_per_s(d)
            );
            assert_eq!(private.sharers(d), 1);
        }
    }

    #[test]
    fn heterogeneous_groups_take_the_fattest_member_rate() {
        let devices = vec![DeviceSpec::tesla_k20x(), DeviceSpec::gtx_1080_ti()];
        let shared = Topology::shared_root(&devices);
        assert_eq!(
            shared.link_bandwidth_gb_per_s(0),
            DeviceSpec::gtx_1080_ti().pcie.bandwidth_gb_per_s()
        );
    }

    #[test]
    fn weighted_partition_is_exact_and_proportional() {
        let ranges = weighted_partition(100, &[3.0, 1.0]);
        assert_eq!(ranges, vec![(0, 75), (75, 100)]);
        let ranges = weighted_partition(10, &[1.0, 1.0, 1.0]);
        let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn weighted_partition_handles_degenerate_weights() {
        // All-zero, negative and non-finite weights degrade to equal shares.
        assert_eq!(
            weighted_partition(7, &[0.0, 0.0, 0.0]),
            vec![(0, 3), (3, 5), (5, 7)]
        );
        let ranges = weighted_partition(9, &[f64::NAN, -2.0, 1.0]);
        assert_eq!(ranges.last().unwrap().1, 9);
        // The only sane weight takes everything.
        assert_eq!(ranges[2], (0, 9));
        assert_eq!(weighted_partition(0, &[2.0, 1.0]), vec![(0, 0), (0, 0)]);
    }

    #[test]
    fn contended_pipeline_is_slower_and_uncontended_matches_private() {
        // Two devices, one chunk each, transfer-dominated: on the shared link
        // one transfer stalls a full transfer-time behind the other.
        let devices = pascal(2);
        let loads = vec![
            vec![ChunkLoad {
                host_seconds: 0.001,
                h2d_bytes: [50_000_000, 50_000_000],
                kernel_seconds: 0.002,
                d2h_bytes: 65_536,
            }];
            2
        ];
        let shared = Topology::shared_root(&devices);
        let contended = simulate_contended(&shared, &loads, 3);
        let free = simulate_contended(&shared.to_independent(), &loads, 3);
        assert!(contended.makespan_seconds > free.makespan_seconds);
        assert!(contended.link_wait_seconds() > 0.0);
        assert_eq!(free.link_wait_seconds(), 0.0);
        assert_eq!(contended.anomalies, 0);
        // Device 0 wins the tie at the FIFO arbiter; device 1 eats the stall.
        assert_eq!(contended.per_device_link_wait_seconds[0], 0.0);
        assert!(contended.per_device_link_wait_seconds[1] > 0.0);
        // Byte accounting covers both directions.
        assert_eq!(contended.links[0].h2d_bytes, 200_000_000);
        assert_eq!(contended.links[0].d2h_bytes, 2 * 65_536);
        assert!(contended.links[0].utilization > 0.0);
        assert!(contended.links[0].utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn uncontended_run_matches_a_plain_per_device_timeline_exactly() {
        // On private links the contended scheduler must reproduce the plain
        // three-stream pipeline bit-for-bit: same f64 operations in the same
        // order.
        let devices = pascal(1);
        let bw = devices[0].pcie.bandwidth_gb_per_s();
        let loads = vec![vec![
            ChunkLoad {
                host_seconds: 0.0015,
                h2d_bytes: [655_360, 655_360],
                kernel_seconds: 0.0007,
                d2h_bytes: 65_536,
            };
            5
        ]];
        let run = simulate_contended(&Topology::independent(&devices), &loads, 3);

        let mut tl = Timeline::new();
        let h2d = tl.add_stream("h2d");
        let kernel = tl.add_stream("kernel");
        let d2h = tl.add_stream("d2h");
        let mut d2h_done: Vec<Event> = Vec::new();
        for (c, load) in loads[0].iter().enumerate() {
            if c >= 3 {
                tl.wait_event(h2d, "slot", &d2h_done[c - 3]);
            }
            tl.enqueue(h2d, "host", load.host_seconds);
            tl.enqueue(h2d, "reads", load.h2d_bytes[0] as f64 / (bw * 1e9));
            let up = tl.enqueue(h2d, "refs", load.h2d_bytes[1] as f64 / (bw * 1e9));
            tl.wait_event(kernel, "wait up", &up);
            let done = tl.enqueue(kernel, "kernel", load.kernel_seconds);
            tl.wait_event(d2h, "wait kernel", &done);
            d2h_done.push(tl.enqueue(d2h, "readback", load.d2h_bytes as f64 / (bw * 1e9)));
        }
        assert_eq!(run.makespan_seconds, tl.makespan_seconds());
        assert_eq!(run.per_device_finish_seconds[0], tl.makespan_seconds());
        assert_eq!(run.link_wait_seconds(), 0.0);
    }

    #[test]
    fn slot_gating_limits_in_flight_chunks() {
        // With 1 slot the pipeline fully serializes per device; with 3 slots
        // stages overlap and the makespan strictly improves.
        let devices = pascal(1);
        let loads = vec![vec![
            ChunkLoad {
                host_seconds: 0.001,
                h2d_bytes: [1_000_000, 0],
                kernel_seconds: 0.001,
                d2h_bytes: 500_000,
            };
            6
        ]];
        let topo = Topology::independent(&devices);
        let tight = simulate_contended(&topo, &loads, 1);
        let roomy = simulate_contended(&topo, &loads, 3);
        assert!(roomy.makespan_seconds < tight.makespan_seconds);
    }

    #[test]
    fn empty_loads_produce_an_empty_run() {
        let devices = pascal(2);
        let run = simulate_contended(
            &Topology::shared_root(&devices),
            &[Vec::new(), Vec::new()],
            3,
        );
        assert_eq!(run.makespan_seconds, 0.0);
        assert_eq!(run.link_wait_seconds(), 0.0);
        assert_eq!(run.links[0].h2d_bytes, 0);
    }

    #[test]
    fn nvlink_hides_the_contention_a_shared_root_exposes() {
        let devices = pascal(8);
        let loads: Vec<Vec<ChunkLoad>> = (0..8)
            .map(|_| {
                vec![
                    ChunkLoad {
                        host_seconds: 0.0001,
                        h2d_bytes: [10_000_000, 10_000_000],
                        kernel_seconds: 0.0005,
                        d2h_bytes: 65_536,
                    };
                    4
                ]
            })
            .collect();
        let root = simulate_contended(&Topology::shared_root(&devices), &loads, 3);
        let nvlink = simulate_contended(&Topology::nvlink(&devices), &loads, 3);
        assert!(nvlink.makespan_seconds < root.makespan_seconds);
        assert!(nvlink.link_wait_seconds() < root.link_wait_seconds());
    }
}
