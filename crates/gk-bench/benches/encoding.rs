//! Criterion bench: host-side prep cost per encoding actor (the trade-off of
//! Figure 6 — host encoding buys smaller transfers at the price of the 2-bit
//! packing work here; device encoding only pays the raw-arena gather).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gk_seq::datasets::DatasetProfile;
use gk_seq::packed::{encode_batch_parallel, PackedSeq};
use gk_seq::pairs::encode_pair_batch;
use std::hint::black_box;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    group.sample_size(20);

    for read_len in [100usize, 150, 250] {
        let sequences: Vec<Vec<u8>> = (0..512)
            .map(|i| {
                (0..read_len)
                    .map(|j| b"ACGT"[(i * 31 + j * 7) % 4])
                    .collect()
            })
            .collect();
        group.throughput(Throughput::Bytes((read_len * sequences.len()) as u64));

        group.bench_with_input(
            BenchmarkId::new("serial", format!("{read_len}bp")),
            &sequences,
            |b, sequences| {
                b.iter(|| {
                    sequences
                        .iter()
                        .map(|s| black_box(PackedSeq::from_ascii(black_box(s))).len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{read_len}bp")),
            &sequences,
            |b, sequences| {
                let refs: Vec<&[u8]> = sequences.iter().map(|s| s.as_slice()).collect();
                b.iter(|| encode_batch_parallel(black_box(&refs)).len())
            },
        );
    }
    group.finish();
}

/// The per-batch host prep of the two execution paths, head to head: the
/// host-encode path runs `encode_pair_batch` (2-bit packing), the
/// device-encode path only gathers the raw transfer arenas
/// (`PairBatches::raw()`) and leaves the packing to the fused kernel.
fn bench_prep_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("prep_paths");
    group.sample_size(20);

    let profile = DatasetProfile::set3();
    let pairs = 4_096usize;
    let batch = 512usize;
    group.throughput(Throughput::Elements(pairs as u64));

    group.bench_function(BenchmarkId::new("host_encode", "set3"), |b| {
        b.iter(|| {
            profile
                .stream_batches(pairs, 11, batch)
                .map(|chunk| encode_pair_batch(black_box(&chunk)).len())
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::new("raw_gather", "set3"), |b| {
        b.iter(|| {
            profile
                .stream_batches(pairs, 11, batch)
                .raw()
                .map(|arena| black_box(arena.h2d_bytes()))
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encoding, bench_prep_paths);
criterion_main!(benches);
