//! Criterion bench: host-side 2-bit encoding cost (the "encoding actor" trade-off
//! of Figure 6 — host encoding buys smaller transfers at the price of this work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gk_seq::packed::{encode_batch_parallel, PackedSeq};
use std::hint::black_box;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    group.sample_size(20);

    for read_len in [100usize, 150, 250] {
        let sequences: Vec<Vec<u8>> = (0..512)
            .map(|i| {
                (0..read_len)
                    .map(|j| b"ACGT"[(i * 31 + j * 7) % 4])
                    .collect()
            })
            .collect();
        group.throughput(Throughput::Bytes((read_len * sequences.len()) as u64));

        group.bench_with_input(
            BenchmarkId::new("serial", format!("{read_len}bp")),
            &sequences,
            |b, sequences| {
                b.iter(|| {
                    sequences
                        .iter()
                        .map(|s| black_box(PackedSeq::from_ascii(black_box(s))).len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{read_len}bp")),
            &sequences,
            |b, sequences| {
                let refs: Vec<&[u8]> = sequences.iter().map(|s| s.as_slice()).collect();
                b.iter(|| encode_batch_parallel(black_box(&refs)).len())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
