//! Criterion bench: the cost of verification-style alignment — Myers bit-vector
//! edit distance (the Edlib ground truth), full Levenshtein DP, banded DP and
//! Needleman-Wunsch traceback. These are the "expensive sequence alignment" costs
//! the pre-alignment filter exists to avoid (Table 4's DP model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gk_align::dp::{banded_levenshtein, levenshtein};
use gk_align::myers::edit_distance;
use gk_align::nw::{needleman_wunsch, ScoringScheme};
use gk_seq::datasets::DatasetProfile;
use std::hint::black_box;

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("alignment");
    group.sample_size(20);

    for read_len in [100usize, 250] {
        let set = DatasetProfile::low_edit(read_len).generate(32, 13);
        let threshold = (read_len / 20) as u32;

        group.bench_with_input(
            BenchmarkId::new("myers_bitvector", format!("{read_len}bp")),
            &set,
            |b, set| {
                b.iter(|| {
                    set.pairs
                        .iter()
                        .map(|p| edit_distance(black_box(&p.read), black_box(&p.reference)))
                        .sum::<u32>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("levenshtein_dp", format!("{read_len}bp")),
            &set,
            |b, set| {
                b.iter(|| {
                    set.pairs
                        .iter()
                        .map(|p| levenshtein(black_box(&p.read), black_box(&p.reference)))
                        .sum::<u32>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("banded_verification", format!("{read_len}bp")),
            &set,
            |b, set| {
                b.iter(|| {
                    set.pairs
                        .iter()
                        .filter_map(|p| {
                            banded_levenshtein(
                                black_box(&p.read),
                                black_box(&p.reference),
                                threshold,
                            )
                        })
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("needleman_wunsch", format!("{read_len}bp")),
            &set,
            |b, set| {
                b.iter(|| {
                    set.pairs
                        .iter()
                        .map(|p| {
                            needleman_wunsch(
                                black_box(&p.read),
                                black_box(&p.reference),
                                ScoringScheme::default(),
                            )
                            .score
                        })
                        .sum::<i32>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alignment);
criterion_main!(benches);
