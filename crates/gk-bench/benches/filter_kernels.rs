//! Criterion bench: single-pair filtration cost of every pre-alignment filter.
//!
//! This is the per-filtration cost underlying the throughput tables (Table 2,
//! S.13–S.15): the GateKeeper-family filters are cheapest, the map-based filters
//! (Shouji, SneakySnake, MAGNET) cost more per pair, and everything is orders of
//! magnitude cheaper than the exact edit-distance computation it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gk_filters::{
    GateKeeperFpgaFilter, GateKeeperGpuFilter, MagnetFilter, PreAlignmentFilter, ShoujiFilter,
    SneakySnakeFilter,
};
use gk_seq::datasets::DatasetProfile;
use std::hint::black_box;

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_kernels");
    group.sample_size(20);

    for read_len in [100usize, 250] {
        let threshold = (read_len / 25) as u32;
        let set = DatasetProfile::low_edit(read_len).generate(64, 7);
        let filters: Vec<(&str, Box<dyn PreAlignmentFilter>)> = vec![
            (
                "gatekeeper_gpu",
                Box::new(GateKeeperGpuFilter::new(threshold)),
            ),
            (
                "gatekeeper_fpga",
                Box::new(GateKeeperFpgaFilter::new(threshold)),
            ),
            ("shouji", Box::new(ShoujiFilter::new(threshold))),
            ("magnet", Box::new(MagnetFilter::new(threshold))),
            ("sneaky_snake", Box::new(SneakySnakeFilter::new(threshold))),
        ];
        for (name, filter) in filters {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{read_len}bp")),
                &set,
                |b, set| {
                    b.iter(|| {
                        let mut accepted = 0usize;
                        for pair in &set.pairs {
                            if filter
                                .filter_pair(black_box(&pair.read), black_box(&pair.reference))
                                .accepted
                            {
                                accepted += 1;
                            }
                        }
                        accepted
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
