//! Criterion bench: work-stealing pool scaling on the host-side hot paths.
//!
//! With the real parallel backend in `shims/rayon`, the CPU GateKeeper
//! baseline and host 2-bit encoding should scale with the thread count; this
//! bench sweeps 1/2/4/8 threads over the same batch so the speedup (and the
//! honesty of the GPU-vs-CPU comparisons in Tables 2/4/5) is directly
//! observable. The 1-thread row is the sequential fallback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gk_bench::runner::shared_pool;
use gk_core::cpu::GateKeeperCpu;
use gk_seq::datasets::DatasetProfile;
use gk_seq::pairs::encode_pair_batch;
use std::hint::black_box;

fn bench_pool_scaling(c: &mut Criterion) {
    let pairs = DatasetProfile::set3().generate(8_192, 42);
    let mut group = c.benchmark_group("parallel_pool");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pairs.len() as u64));

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("gatekeeper_cpu", format!("{threads}t")),
            &threads,
            |b, &threads| {
                // Reuse the process-wide pool for this thread count: the bench
                // measures filtering, not worker spawn-up (and repeated
                // Criterion samples must not leak one pool per iteration).
                let filter = GateKeeperCpu::with_pool(4, threads, shared_pool(threads));
                b.iter(|| black_box(&filter).filter_set(black_box(&pairs)).accepted())
            },
        );
    }

    group.bench_function("encode_pair_batch/pool", |b| {
        b.iter(|| encode_pair_batch(black_box(&pairs.pairs)).len())
    });
    group.finish();
}

criterion_group!(benches, bench_pool_scaling);
criterion_main!(benches);
