//! Criterion bench: batched GateKeeper-GPU runs on the simulated device — wall
//! clock cost of processing a pair set as a function of batch size and encoding
//! actor (the knob explored by Table 1 and Figure 6).
//!
//! The two `gpu_batch` rows per batch size are genuinely different execution
//! paths, printed side by side: `device_encode` gathers raw 1-byte-per-base
//! arenas and packs inside the fused kernel closure, `host_encode` runs
//! `encode_pair_batch` on the pool before the (smaller) simulated transfer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gk_core::config::FilterConfig;
use gk_core::gpu::GateKeeperGpu;
use gk_seq::datasets::DatasetProfile;
use std::hint::black_box;

fn bench_gpu_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_batch");
    group.sample_size(10);

    let set = DatasetProfile::set3().generate(4_000, 99);
    group.throughput(Throughput::Elements(set.len() as u64));

    for batch_size in [250usize, 1_000, 4_000] {
        for device_encode in [true, false] {
            let label = if device_encode {
                "device_encode"
            } else {
                "host_encode"
            };
            group.bench_with_input(BenchmarkId::new(label, batch_size), &set, |b, set| {
                let gpu = GateKeeperGpu::with_default_device(
                    FilterConfig::new(100, 5)
                        .with_device_encode(device_encode)
                        .with_max_reads_per_batch(batch_size),
                );
                b.iter(|| gpu.filter_set(black_box(set)).accepted())
            });
        }
    }
    group.finish();
}

fn bench_pipeline_overlap(c: &mut Criterion) {
    // Host wall-clock cost of the chunked pipeline itself (the simulated
    // timeline bookkeeping is the only difference between the two modes).
    let mut group = c.benchmark_group("gpu_pipeline");
    group.sample_size(10);

    let set = DatasetProfile::set3().generate(4_000, 99);
    group.throughput(Throughput::Elements(set.len() as u64));

    for (label, overlap) in [("serialized", false), ("overlapped", true)] {
        group.bench_with_input(BenchmarkId::new(label, 500usize), &set, |b, set| {
            let gpu = GateKeeperGpu::with_default_device(
                FilterConfig::new(100, 5)
                    .with_chunk_pairs(500)
                    .with_overlap(overlap),
            );
            b.iter(|| gpu.filter_set(black_box(set)).accepted())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gpu_batches, bench_pipeline_overlap);
criterion_main!(benches);
