//! Criterion bench: end-to-end read mapping on a small synthetic genome, with and
//! without GateKeeper-GPU pre-alignment filtering (the wall-clock counterpart of
//! Tables 3 and 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gk_core::config::FilterConfig;
use gk_core::gpu::GateKeeperGpu;
use gk_mapper::pipeline::{MapperConfig, PreFilter, ReadMapper};
use gk_seq::reference::ReferenceBuilder;
use gk_seq::simulate::{ErrorProfile, ReadSimulator};
use std::hint::black_box;

fn bench_mapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper");
    group.sample_size(10);

    let reference = ReferenceBuilder::new(200_000)
        .seed(5)
        .repeat_fraction(0.3)
        .n_gaps(0, 0)
        .build();
    let reads: Vec<_> = ReadSimulator::new(100, ErrorProfile::illumina())
        .seed(6)
        .simulate(&reference, 400)
        .iter()
        .map(|r| r.to_fastq())
        .collect();
    let threshold = 3u32;
    let mapper = ReadMapper::new(reference, MapperConfig::new(threshold));
    group.throughput(Throughput::Elements(reads.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("no_filter", "100bp"),
        &reads,
        |b, reads| {
            b.iter(|| {
                mapper
                    .map_reads(black_box(reads), &PreFilter::None)
                    .stats
                    .mappings
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("gatekeeper_gpu", "100bp"),
        &reads,
        |b, reads| {
            b.iter(|| {
                let gpu = GateKeeperGpu::with_default_device(FilterConfig::new(100, threshold));
                mapper
                    .map_reads(black_box(reads), &PreFilter::Gpu(gpu))
                    .stats
                    .mappings
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_mapper);
criterion_main!(benches);
