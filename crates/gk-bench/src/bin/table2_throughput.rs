//! Table 2 (and Sup. Tables S.13–S.15) — filtering throughput of GateKeeper-CPU
//! (1 and 12 cores) versus GateKeeper-GPU (1 and 8 GPUs, host- and device-encoded)
//! in both setups, by kernel time and filter time, in billions of filtrations per
//! 40 minutes.
//!
//! Usage: `cargo run --release -p gk-bench --bin table2_throughput [--pairs N] [--full]`
//! (`--full` adds the 150 bp and 250 bp tables, i.e. S.14 and S.15.)

use gk_bench::datasets::throughput_set;
use gk_bench::runner::{cpu_throughput_with_mode, gpu_throughput};
use gk_bench::table::{fmt, Table};
use gk_bench::{HarnessArgs, SETUP1, SETUP2};
use gk_core::config::EncodingActor;

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(60_000);

    let configurations: Vec<(usize, Vec<u32>)> = if args.full {
        vec![(100, vec![2, 5]), (150, vec![4, 10]), (250, vec![6, 10])]
    } else {
        vec![(100, vec![2, 5])]
    };

    for (read_len, thresholds) in configurations {
        println!(
            "Table 2{}: filtering throughput for {read_len}bp sequences ({pairs} pairs, scaled units)",
            if read_len == 100 { "" } else { " (supplementary)" }
        );
        println!("Throughput unit: billions of filtrations in 40 minutes (B/40min)\n");

        let set = throughput_set(read_len, pairs);
        for setup in [SETUP1, SETUP2] {
            let mut table = Table::new(vec![
                "Metric",
                "e",
                "CPU 1-core",
                "CPU 12-core",
                "Dev-enc 1-GPU",
                "Dev-enc 8-GPU",
                "Host-enc 1-GPU",
                "Host-enc 8-GPU",
            ])
            .with_title(format!("{} ({})", setup.name, setup.device().name));

            for &e in &thresholds {
                let cpu1 = cpu_throughput_with_mode(&set, e, 1, args.simd_mode());
                let cpu12 = cpu_throughput_with_mode(&set, e, setup.cpu_cores, args.simd_mode());
                let dev1 = gpu_throughput(&setup, 1, &set, e, EncodingActor::Device);
                let host1 = gpu_throughput(&setup, 1, &set, e, EncodingActor::Host);
                let (dev8, host8) = if setup.max_devices >= 8 {
                    (
                        Some(gpu_throughput(&setup, 8, &set, e, EncodingActor::Device)),
                        Some(gpu_throughput(&setup, 8, &set, e, EncodingActor::Host)),
                    )
                } else {
                    (None, None)
                };

                let na = "NA".to_string();
                table.row(vec![
                    "kt (B/40min)".into(),
                    e.to_string(),
                    fmt(cpu1.kernel_b40, 2),
                    fmt(cpu12.kernel_b40, 2),
                    fmt(dev1.kernel_b40, 1),
                    dev8.map(|p| fmt(p.kernel_b40, 1))
                        .unwrap_or_else(|| na.clone()),
                    fmt(host1.kernel_b40, 1),
                    host8
                        .map(|p| fmt(p.kernel_b40, 1))
                        .unwrap_or_else(|| na.clone()),
                ]);
                table.row(vec![
                    "ft (B/40min)".into(),
                    e.to_string(),
                    fmt(cpu1.filter_b40, 2),
                    fmt(cpu12.filter_b40, 2),
                    fmt(dev1.filter_b40, 2),
                    dev8.map(|p| fmt(p.filter_b40, 2))
                        .unwrap_or_else(|| na.clone()),
                    fmt(host1.filter_b40, 2),
                    host8
                        .map(|p| fmt(p.filter_b40, 2))
                        .unwrap_or_else(|| na.clone()),
                ]);
            }
            table.print();
        }
        println!("Expected shape (paper): GPU kernel-time throughput is 1-2 orders of magnitude above the CPU;");
        println!("host encoding wins on kernel time, device encoding wins on filter time; Setup 2 trails Setup 1.\n");
    }
}
