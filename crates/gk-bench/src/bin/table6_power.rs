//! Table 6 (and Sup. Table S.27) — power consumption of a single GPU running
//! GateKeeper-GPU: min / max / average milliwatts for 100 bp and 250 bp datasets,
//! device- and host-encoded, in both setups.
//!
//! Usage: `cargo run --release -p gk-bench --bin table6_power [--pairs N]`

use gk_bench::datasets::throughput_set;
use gk_bench::table::{fmt, Table};
use gk_bench::{HarnessArgs, SETUP1, SETUP2};
use gk_core::config::{EncodingActor, FilterConfig};
use gk_core::gpu::GateKeeperGpu;

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(40_000);

    println!("Table 6 / S.27: power consumption of GateKeeper-GPU ({pairs} pairs per run)\n");

    for setup in [SETUP1, SETUP2] {
        let mut table = Table::new(vec![
            "Power (mW)",
            "Device-enc 100bp",
            "Device-enc 250bp",
            "Host-enc 100bp",
            "Host-enc 250bp",
        ])
        .with_title(format!("{} ({})", setup.name, setup.device().name));

        let mut reports = Vec::new();
        for encoding in [EncodingActor::Device, EncodingActor::Host] {
            for (read_len, e) in [(100usize, 4u32), (250, 10)] {
                let set = throughput_set(read_len, pairs);
                let gpu = GateKeeperGpu::new(
                    setup.device(),
                    FilterConfig::new(read_len, e).with_encoding(encoding),
                );
                let run = gpu.filter_set(&set);
                reports.push(run.power.expect("power report for a non-empty run"));
            }
        }

        for (label, pick) in [("min", 0usize), ("max", 1), ("average", 2)] {
            let value = |idx: usize| -> f64 {
                match pick {
                    0 => reports[idx].min_mw,
                    1 => reports[idx].max_mw,
                    _ => reports[idx].average_mw,
                }
            };
            table.row(vec![
                label.to_string(),
                fmt(value(0), 0),
                fmt(value(1), 0),
                fmt(value(2), 0),
                fmt(value(3), 0),
            ]);
        }
        table.print();
    }

    println!("Expected shape (paper): 250bp kernels draw more power than 100bp kernels; the encoding actor");
    println!("has a negligible effect; the Kepler board idles higher (~30 W) than the Pascal board (~9 W).");
}
