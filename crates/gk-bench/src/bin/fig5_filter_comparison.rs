//! Figure 5 (and Sup. Figures S.7–S.11, Tables S.7–S.12) — false-accept comparison
//! between GateKeeper-GPU and the other pre-alignment filters (GateKeeper-FPGA,
//! SHD, Shouji, MAGNET, SneakySnake) on low-edit and high-edit profile datasets.
//! Undefined pairs are counted as accepted for every filter, as in §5.1.2.
//!
//! Usage: `cargo run --release -p gk-bench --bin fig5_filter_comparison [--pairs N] [--full]`
//! (`--full` adds the 150 bp and 250 bp datasets.)

use gk_bench::datasets::{high_edit_set, low_edit_set};
use gk_bench::table::{fmt_count, Table};
use gk_bench::HarnessArgs;
use gk_filters::accuracy::{evaluate_with_truth, ground_truth_distances, UndefinedPolicy};
use gk_filters::{
    GateKeeperFpgaFilter, GateKeeperGpuFilter, MagnetFilter, PreAlignmentFilter, ShdFilter,
    ShoujiFilter, SneakySnakeFilter,
};
use gk_seq::pairs::PairSet;

fn filters_for(e: u32) -> Vec<Box<dyn PreAlignmentFilter>> {
    vec![
        Box::new(GateKeeperGpuFilter::new(e)),
        Box::new(GateKeeperFpgaFilter::new(e)),
        Box::new(ShdFilter::new(e)),
        Box::new(ShoujiFilter::new(e)),
        Box::new(MagnetFilter::new(e)),
        Box::new(SneakySnakeFilter::new(e)),
    ]
}

fn compare_on(set: &PairSet, thresholds: &[u32]) {
    let truth = ground_truth_distances(set);
    let mut fa_table = Table::new(vec![
        "e",
        "GateKeeper-GPU",
        "GateKeeper-FPGA",
        "SHD",
        "Shouji",
        "MAGNET",
        "SneakySnake",
    ])
    .with_title(format!(
        "False accepts — {} ({} pairs, {}bp, {} undefined pairs counted as accepted)",
        set.name,
        set.len(),
        set.read_len,
        set.undefined_count()
    ));
    let mut fr_table = Table::new(vec![
        "e",
        "GateKeeper-GPU",
        "GateKeeper-FPGA",
        "SHD",
        "Shouji",
        "MAGNET",
        "SneakySnake",
    ])
    .with_title(format!("False rejects — {}", set.name));

    for &e in thresholds {
        let mut fa_row = vec![e.to_string()];
        let mut fr_row = vec![e.to_string()];
        for filter in filters_for(e) {
            let report = evaluate_with_truth(
                filter.as_ref(),
                set,
                &truth,
                UndefinedPolicy::CountAsAccepted,
            );
            fa_row.push(fmt_count(report.false_accepts as u64));
            fr_row.push(fmt_count(report.false_rejects as u64));
        }
        fa_table.row(fa_row);
        fr_table.row(fr_row);
    }
    fa_table.print();
    fr_table.print();
}

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(10_000);

    println!("Figure 5 / Tables S.7-S.12: false-accept comparison across pre-alignment filters\n");

    let read_lengths: Vec<usize> = if args.full {
        vec![100, 150, 250]
    } else {
        vec![100]
    };

    for read_len in read_lengths {
        let thresholds: Vec<u32> = (0..=(read_len as u32 / 10))
            .step_by((read_len / 50).max(1))
            .collect();
        compare_on(&low_edit_set(read_len, pairs), &thresholds);
        compare_on(&high_edit_set(read_len, pairs), &thresholds);
    }

    println!("Expected shape (paper): SneakySnake and MAGNET have the fewest false accepts, Shouji next,");
    println!("then GateKeeper-GPU, with GateKeeper-FPGA and SHD (identical) the least accurate — and only");
    println!("MAGNET ever produces false rejects.");
}
