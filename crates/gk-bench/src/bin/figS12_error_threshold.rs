//! Figure S.12 (and Sup. Table S.16) — effect of an increasing error threshold on
//! the *filter time* of 12-core GateKeeper-CPU versus single-GPU GateKeeper-GPU
//! (250 bp pairs): the CPU's filter time grows almost linearly with `e`, the GPU's
//! stays flat.
//!
//! Usage: `cargo run --release -p gk-bench --bin figS12_error_threshold [--pairs N]`

use gk_bench::datasets::throughput_set;
use gk_bench::runner::{cpu_throughput_with_mode, gpu_throughput};
use gk_bench::table::{fmt, Table};
use gk_bench::{HarnessArgs, SETUP1, SETUP2};
use gk_core::config::EncodingActor;

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(20_000);
    let set = throughput_set(250, pairs);

    println!("Figure S.12 / Table S.16: effect of the error threshold on filter time (250bp, {pairs} pairs)");
    println!("Times in seconds; the paper's absolute values are for 30M pairs, so only the growth trend is comparable.\n");

    let mut table = Table::new(vec![
        "e",
        "12-core CPU (s)",
        "Setup1 device-enc GPU (s)",
        "Setup1 host-enc GPU (s)",
        "Setup2 device-enc GPU (s)",
    ]);

    for e in [0u32, 1, 2, 4, 6, 8, 10] {
        let cpu = cpu_throughput_with_mode(&set, e, SETUP1.cpu_cores, args.simd_mode());
        let s1_dev = gpu_throughput(&SETUP1, 1, &set, e, EncodingActor::Device);
        let s1_host = gpu_throughput(&SETUP1, 1, &set, e, EncodingActor::Host);
        let s2_dev = gpu_throughput(&SETUP2, 1, &set, e, EncodingActor::Device);
        table.row(vec![
            e.to_string(),
            fmt(cpu.filter_seconds, 3),
            fmt(s1_dev.filter_seconds, 3),
            fmt(s1_host.filter_seconds, 3),
            fmt(s2_dev.filter_seconds, 3),
        ]);
    }

    table.print();
    println!("Expected shape (paper): the CPU column grows roughly linearly with e (~7x from e=0 to e=10),");
    println!("while every GPU column stays essentially flat.");
}
