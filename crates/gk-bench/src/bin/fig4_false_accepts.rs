//! Figure 4 (and Sup. Tables S.2–S.6, Figures S.3–S.6) — accuracy of GateKeeper-GPU
//! with respect to the Edlib ground truth: accepted/rejected counts, false accepts,
//! false-accept rate and true-reject rate across error thresholds from 0 to 10% of
//! the read length. Undefined pairs are excluded, as in §5.1.1.
//!
//! Usage: `cargo run --release -p gk-bench --bin fig4_false_accepts [--pairs N]
//! [--full] [--mapper-profiles]`
//! (`--full` adds 150 bp and 250 bp; `--mapper-profiles` adds the Minimap2- and
//! BWA-MEM-style candidate sets of Figures S.5/S.6.)

use gk_bench::datasets::{accuracy_set, bwa_mem_set, minimap2_set};
use gk_bench::table::{fmt, fmt_count, Table};
use gk_bench::HarnessArgs;
use gk_filters::accuracy::{evaluate_with_truth, ground_truth_distances, UndefinedPolicy};
use gk_filters::GateKeeperGpuFilter;
use gk_seq::pairs::PairSet;

fn report_for_set(set: &PairSet, thresholds: &[u32]) {
    let truth = ground_truth_distances(set);
    let mut table = Table::new(vec![
        "e",
        "Edlib accepted",
        "Edlib rejected",
        "GK-GPU accepted",
        "GK-GPU rejected",
        "False accepts",
        "False accept rate",
        "True reject rate",
        "False rejects",
    ])
    .with_title(format!(
        "{} ({} pairs, {}bp, undefined excluded)",
        set.name,
        set.len(),
        set.read_len
    ));

    for &e in thresholds {
        let filter = GateKeeperGpuFilter::new(e);
        let report = evaluate_with_truth(&filter, set, &truth, UndefinedPolicy::Exclude);
        table.row(vec![
            e.to_string(),
            fmt_count(report.edlib_accepted as u64),
            fmt_count(report.edlib_rejected as u64),
            fmt_count(report.filter_accepted as u64),
            fmt_count(report.filter_rejected as u64),
            fmt_count(report.false_accepts as u64),
            format!("{}%", fmt(report.false_accept_rate() * 100.0, 2)),
            format!("{}%", fmt(report.true_reject_rate() * 100.0, 2)),
            fmt_count(report.false_rejects as u64),
        ]);
    }
    table.print();
}

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(20_000);

    println!("Figure 4 / Tables S.2-S.4: false-accept analysis of GateKeeper-GPU vs Edlib\n");

    let read_lengths: Vec<usize> = if args.full {
        vec![100, 150, 250]
    } else {
        vec![100]
    };
    for read_len in read_lengths {
        let set = accuracy_set(read_len, pairs);
        let thresholds: Vec<u32> = (0..=(read_len as u32 / 10))
            .step_by((read_len / 100).max(1))
            .collect();
        report_for_set(&set, &thresholds);
    }

    if args.mapper_profiles {
        println!("Figures S.5/S.6: accuracy on Minimap2- and BWA-MEM-style candidate sets\n");
        let thresholds: Vec<u32> = (0..=10).collect();
        report_for_set(&minimap2_set(pairs), &thresholds);
        report_for_set(&bwa_mem_set(pairs / 10 + 100), &thresholds);
    }

    println!("Expected shape (paper): zero false rejects everywhere; >90% true-reject rate below ~3% error");
    println!(
        "thresholds; the false-accept rate climbs with the threshold and with the read length."
    );
}
