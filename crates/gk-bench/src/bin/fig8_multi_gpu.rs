//! Figure 8 (and Sup. Figure S.15, Tables S.21–S.23) — multi-GPU filtering
//! throughput of GateKeeper-GPU in Setup 1 as the number of devices grows from 1 to
//! 8, by kernel time and filter time, in both encoding modes — plus the
//! interconnect sweep the paper's free-overlap assumption hides: the same 1–8
//! device scaling replayed on a shared host link, naive round-robin sharding
//! against the topology-aware scheduler, contention on and off.
//!
//! Hard-asserted invariants (the binary aborts if any fails):
//! * decisions are digest-identical across naive/aware scheduling and
//!   contention on/off, at every device count;
//! * the private-link run's contended replay matches the shared run's
//!   uncontended twin bit-for-bit (turning contention off reproduces the
//!   paper's independent-link numbers exactly);
//! * on the shared-root topology at the full device count, topology-aware
//!   scheduling strictly beats the naive sharder's makespan.
//!
//! Emits a Markdown comparison table between `<!-- multi-gpu-topology:begin/end -->`
//! markers (lifted into the CI job summary) and machine-readable
//! `BENCH_multi_gpu.json` in the working directory.
//!
//! Usage: `cargo run --release -p gk-bench --bin fig8_multi_gpu
//! [--pairs N] [--full] [--topology shared|switch[:N]|nvlink] [--aware]`
//! (`--full` adds the 150 bp / e = 4 and 250 bp / e = 8 panels of Figure S.15;
//! `--topology` picks the contention-sweep wiring, default the shared root
//! complex).

use gk_bench::datasets::throughput_set;
use gk_bench::runner::{gpu_throughput, multi_gpu_run};
use gk_bench::table::{fmt, Table};
use gk_bench::{HarnessArgs, SETUP1};
use gk_core::config::EncodingActor;
use gk_core::multi_gpu::MultiGpuRun;
use gk_gpusim::topology::TopologyKind;

/// FNV-1a-style digest over the decision stream (the cross-combo identity
/// check).
fn digest(run: &MultiGpuRun) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for d in &run.decisions {
        hash = hash
            .wrapping_mul(1_099_511_628_211)
            .wrapping_add((u64::from(d.accepted) << 1) | u64::from(d.undefined));
    }
    hash
}

/// One device count of the contention sweep: the shared-topology runs under
/// both schedulers, plus their private-link twins (contention off).
struct SweepRow {
    devices: usize,
    naive: MultiGpuRun,
    aware: MultiGpuRun,
    naive_private: MultiGpuRun,
    aware_private: MultiGpuRun,
}

fn ms(seconds: f64) -> String {
    fmt(seconds * 1e3, 3)
}

/// Hand-rolled JSON for one sweep point (the workspace vendors no JSON
/// serializer; `f64` `Display` never emits exponents, so the output stays
/// strictly conformant).
fn json_point(devices: usize, scheduler: &str, pairs: usize, run: &MultiGpuRun) -> String {
    let links = run
        .interconnect
        .links()
        .iter()
        .map(|l| {
            format!(
                "{{\"name\":\"{}\",\"bandwidth_gb_per_s\":{},\"devices\":{},\
                 \"h2d_bytes\":{},\"d2h_bytes\":{},\"busy_seconds\":{},\
                 \"wait_seconds\":{},\"utilization\":{}}}",
                l.name,
                l.bandwidth_gb_per_s,
                l.devices,
                l.h2d_bytes,
                l.d2h_bytes,
                l.busy_seconds,
                l.wait_seconds,
                l.utilization
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "    {{\"devices\":{},\"scheduler\":\"{}\",\"topology\":\"{}\",\
         \"contention\":{},\"pairs_per_second\":{},\"makespan_seconds\":{},\
         \"uncontended_seconds\":{},\"penalty_seconds\":{},\"slowdown\":{},\
         \"link_wait_seconds\":{},\"decisions_digest\":\"{:#018x}\",\
         \"links\":[{}]}}",
        devices,
        scheduler,
        run.interconnect.topology,
        run.interconnect.contention_penalty_seconds() > 0.0,
        gk_core::timing::pairs_per_second(pairs, run.interconnect.makespan_seconds()),
        run.interconnect.makespan_seconds(),
        run.interconnect.uncontended.makespan_seconds,
        run.interconnect.contention_penalty_seconds(),
        run.interconnect.contention_slowdown(),
        run.interconnect.link_wait_seconds(),
        digest(run),
        links
    )
}

fn contention_sweep(kind: TopologyKind, pairs: usize) -> Vec<SweepRow> {
    let set = throughput_set(100, pairs);
    let e = 2u32;
    let mut rows = Vec::new();
    for devices in 1..=SETUP1.max_devices {
        let run = |topology, aware| {
            multi_gpu_run(
                &SETUP1,
                devices,
                &set,
                e,
                EncodingActor::Device,
                topology,
                aware,
            )
        };
        let row = SweepRow {
            devices,
            naive: run(kind, false),
            aware: run(kind, true),
            naive_private: run(TopologyKind::Independent, false),
            aware_private: run(TopologyKind::Independent, true),
        };

        // Decisions must not depend on the scheduler or the wiring.
        let reference = digest(&row.naive);
        for (name, run) in [
            ("aware", &row.aware),
            ("naive/private", &row.naive_private),
            ("aware/private", &row.aware_private),
        ] {
            assert_eq!(
                digest(run),
                reference,
                "decision digest diverged for {name} at {devices} device(s)"
            );
        }

        // Every variant's every device must report a clean simulated
        // timeline; a clamped duration would silently turn the contention
        // numbers below into lower bounds. (`multi_gpu_run` already gates
        // this; repeating it here keeps the smoke self-contained.)
        for (name, run) in [
            ("naive", &row.naive),
            ("aware", &row.aware),
            ("naive/private", &row.naive_private),
            ("aware/private", &row.aware_private),
        ] {
            for (device, device_run) in run.per_device.iter().enumerate() {
                gk_bench::runner::assert_no_timing_anomalies(
                    &format!("fig8 {name} {devices}dev device {device}"),
                    &device_run.pipeline,
                );
            }
        }

        // Contention off reproduces the private-link numbers: on PCIe-rate
        // wirings (shared root, switch) the naive run's uncontended twin IS
        // the private-link replay, bit-for-bit. NVLink links run at the
        // fabric rate instead of the PCIe rate, so there the twin must be at
        // least as fast as the private PCIe replay rather than equal to it.
        let twin = row.naive.interconnect.uncontended.makespan_seconds;
        let private = row.naive_private.interconnect.contended.makespan_seconds;
        if kind == TopologyKind::NvLink {
            assert!(
                twin <= private,
                "nvlink uncontended twin slower than the private PCIe replay \
                 at {devices} device(s) ({twin} s > {private} s)"
            );
        } else {
            assert_eq!(
                twin, private,
                "uncontended twin diverged from the private-link run at {devices} device(s)"
            );
        }

        rows.push(row);
    }

    // The acceptance gate: on a shared-link complex at the full device count,
    // aware placement strictly improves the contended makespan.
    if kind == TopologyKind::SharedRoot {
        let last = rows.last().expect("sweep is non-empty");
        assert!(
            last.aware.interconnect.makespan_seconds() < last.naive.interconnect.makespan_seconds(),
            "topology-aware scheduling must strictly beat naive on {} shared-root devices \
             (aware {} s >= naive {} s)",
            last.devices,
            last.aware.interconnect.makespan_seconds(),
            last.naive.interconnect.makespan_seconds()
        );
    }
    rows
}

fn print_sweep(kind: TopologyKind, pairs: usize, rows: &[SweepRow]) {
    let label = kind.label();
    let mut table = Table::new(vec![
        "# GPUs",
        "naive ms",
        "aware ms",
        "aware gain",
        "naive slow-x",
        "aware slow-x",
        "naive wait ms",
        "aware wait ms",
    ])
    .with_title(format!(
        "Interconnect sweep — `{label}` topology, device encode, contended makespan"
    ));
    for row in rows {
        let naive = &row.naive.interconnect;
        let aware = &row.aware.interconnect;
        table.row(vec![
            row.devices.to_string(),
            ms(naive.makespan_seconds()),
            ms(aware.makespan_seconds()),
            format!(
                "{}x",
                fmt(naive.makespan_seconds() / aware.makespan_seconds(), 2)
            ),
            fmt(naive.contention_slowdown(), 2),
            fmt(aware.contention_slowdown(), 2),
            ms(naive.link_wait_seconds()),
            ms(aware.link_wait_seconds()),
        ]);
    }
    table.print();

    // Markdown block for the CI job summary (lifted verbatim by the workflow).
    println!("<!-- multi-gpu-topology:begin -->");
    println!(
        "### `fig8_multi_gpu` interconnect sweep — `{label}` topology, device encode, {pairs} pairs"
    );
    println!();
    println!(
        "| GPUs | naive makespan ms | aware makespan ms | aware gain | naive contention x | \
         aware contention x | naive link wait ms | aware link wait ms | peak link util |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for row in rows {
        let naive = &row.naive.interconnect;
        let aware = &row.aware.interconnect;
        let peak_util = naive
            .links()
            .iter()
            .map(|l| l.utilization)
            .fold(0.0, f64::max);
        println!(
            "| {} | {} | {} | {}x | {} | {} | {} | {} | {}% |",
            row.devices,
            ms(naive.makespan_seconds()),
            ms(aware.makespan_seconds()),
            fmt(naive.makespan_seconds() / aware.makespan_seconds(), 2),
            fmt(naive.contention_slowdown(), 2),
            fmt(aware.contention_slowdown(), 2),
            ms(naive.link_wait_seconds()),
            ms(aware.link_wait_seconds()),
            fmt(peak_util * 100.0, 1),
        );
    }
    println!();
    let last = rows.last().expect("sweep is non-empty");
    println!(
        "Decisions digest-identical across naive/aware and contention on/off: **yes** \
         (digest `{:#018x}` at {} GPUs).",
        digest(&last.naive),
        last.devices
    );
    println!("<!-- multi-gpu-topology:end -->");
    println!();
}

fn write_bench_json(kind: TopologyKind, pairs: usize, rows: &[SweepRow]) {
    let mut points = Vec::new();
    for row in rows {
        points.push(json_point(row.devices, "naive", pairs, &row.naive));
        points.push(json_point(row.devices, "aware", pairs, &row.aware));
        points.push(json_point(row.devices, "naive", pairs, &row.naive_private));
        points.push(json_point(row.devices, "aware", pairs, &row.aware_private));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"fig8_multi_gpu\",\n  \"setup\": \"{}\",\n  \
         \"pairs\": {},\n  \"read_len\": 100,\n  \"threshold\": 2,\n  \
         \"encoding\": \"device\",\n  \"sweep_topology\": \"{}\",\n  \"points\": [\n{}\n  ]\n}}\n",
        SETUP1.name,
        pairs,
        kind.label(),
        points.join(",\n")
    );
    match std::fs::write("BENCH_multi_gpu.json", &json) {
        Ok(()) => println!(
            "wrote BENCH_multi_gpu.json ({} sweep points)",
            rows.len() * 4
        ),
        Err(err) => eprintln!("warning: could not write BENCH_multi_gpu.json: {err}"),
    }
    println!();
}

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(40_000);

    println!("Figure 8 / Tables S.21-S.23: multi-GPU filtering throughput in Setup 1");
    println!("(millions of filtrations per second, {pairs} pairs per point)\n");

    let panels: Vec<(usize, u32)> = if args.full {
        vec![(100, 2), (150, 4), (250, 8)]
    } else {
        vec![(100, 2)]
    };

    for (read_len, e) in panels {
        let set = throughput_set(read_len, pairs);
        let mut table = Table::new(vec![
            "# GPUs",
            "Device-enc kernel",
            "Host-enc kernel",
            "Device-enc filter",
            "Host-enc filter",
        ])
        .with_title(format!("{read_len}bp, e = {e}"));
        for devices in 1..=SETUP1.max_devices {
            let device_enc = gpu_throughput(&SETUP1, devices, &set, e, EncodingActor::Device);
            let host_enc = gpu_throughput(&SETUP1, devices, &set, e, EncodingActor::Host);
            table.row(vec![
                devices.to_string(),
                fmt(device_enc.kernel_mps, 0),
                fmt(host_enc.kernel_mps, 0),
                fmt(device_enc.filter_mps, 1),
                fmt(host_enc.filter_mps, 1),
            ]);
        }
        table.print();
    }

    println!("Expected shape (paper): kernel-time throughput scales almost linearly with the device count");
    println!("(fastest in host-encoded mode), while filter-time throughput grows far more slowly because the");
    println!("host-side preparation does not parallelise across devices.\n");

    // The interconnect sweep. `--topology private` would make every assert
    // trivially vacuous, so the default (and the private spelling) maps to the
    // shared root complex — the wiring the paper's assumption is furthest from.
    let kind = match args.topology() {
        TopologyKind::Independent => TopologyKind::SharedRoot,
        other => other,
    };
    let rows = contention_sweep(kind, pairs);
    print_sweep(kind, pairs, &rows);
    write_bench_json(kind, pairs, &rows);

    println!("Contention sweep invariants held: decisions digest-identical across naive/aware and");
    if kind == TopologyKind::NvLink {
        println!("contention on/off; the uncontended fabric twin ran at least as fast as the");
        println!("private PCIe replay;");
    } else {
        println!(
            "contention on/off; the uncontended twin reproduced the private-link replay \
             bit-for-bit;"
        );
    }
    if kind == TopologyKind::SharedRoot {
        println!(
            "topology-aware scheduling strictly beat the naive sharder at {} shared-root devices.",
            SETUP1.max_devices
        );
    }
}
