//! Figure 8 (and Sup. Figure S.15, Tables S.21–S.23) — multi-GPU filtering
//! throughput of GateKeeper-GPU in Setup 1 as the number of devices grows from 1 to
//! 8, by kernel time and filter time, in both encoding modes.
//!
//! Usage: `cargo run --release -p gk-bench --bin fig8_multi_gpu [--pairs N] [--full]`
//! (`--full` adds the 150 bp / e = 4 and 250 bp / e = 8 panels of Figure S.15.)

use gk_bench::datasets::throughput_set;
use gk_bench::runner::gpu_throughput;
use gk_bench::table::{fmt, Table};
use gk_bench::{HarnessArgs, SETUP1};
use gk_core::config::EncodingActor;

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(40_000);

    println!("Figure 8 / Tables S.21-S.23: multi-GPU filtering throughput in Setup 1");
    println!("(millions of filtrations per second, {pairs} pairs per point)\n");

    let panels: Vec<(usize, u32)> = if args.full {
        vec![(100, 2), (150, 4), (250, 8)]
    } else {
        vec![(100, 2)]
    };

    for (read_len, e) in panels {
        let set = throughput_set(read_len, pairs);
        let mut table = Table::new(vec![
            "# GPUs",
            "Device-enc kernel",
            "Host-enc kernel",
            "Device-enc filter",
            "Host-enc filter",
        ])
        .with_title(format!("{read_len}bp, e = {e}"));
        for devices in 1..=SETUP1.max_devices {
            let device_enc = gpu_throughput(&SETUP1, devices, &set, e, EncodingActor::Device);
            let host_enc = gpu_throughput(&SETUP1, devices, &set, e, EncodingActor::Host);
            table.row(vec![
                devices.to_string(),
                fmt(device_enc.kernel_mps, 0),
                fmt(host_enc.kernel_mps, 0),
                fmt(device_enc.filter_mps, 1),
                fmt(host_enc.filter_mps, 1),
            ]);
        }
        table.print();
    }

    println!("Expected shape (paper): kernel-time throughput scales almost linearly with the device count");
    println!("(fastest in host-encoded mode), while filter-time throughput grows far more slowly because the");
    println!("host-side preparation does not parallelise across devices.");
}
