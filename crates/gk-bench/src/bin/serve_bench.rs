//! Closed-loop + open-loop load generator for the `gk-serve` filter service.
//!
//! Measures aggregate pairs/s and p50/p99 request latency for the dynamic
//! batcher against the unbatched per-request path, under small and mixed
//! small/large workloads, and drives an open-loop overload leg against the
//! bounded admission queue. Every reply is digest-checked against the direct
//! backend invocation — the service must be an *exactly* transparent wrapper.
//!
//! Asserts (in-process mode):
//!   * every request reaches a terminal reply (zero dropped-without-reject);
//!   * batched-vs-direct decisions digest-identical;
//!   * closed-loop batched p99 ≤ request deadline + one flush interval;
//!   * batching lift ≥ 2× on the small-request workload (skipped with a loud
//!     note when the host has fewer than 2 cores — the lift comes from
//!     coalescing small single-block requests into multi-block batches).
//!
//! `--connect ADDR` additionally drives an already-running daemon with the
//! same closed-loop workload (digest + zero-drop asserts only — the external
//! daemon's batching policy is whatever it was started with).
//!
//! Writes `BENCH_serve.json` and prints the README table between
//! `<!-- serve-bench:begin -->` / `<!-- serve-bench:end -->` markers.

use gk_core::backend::{BackendRegistry, FilterBackend, FilterJob, FilterKind};
use gk_filters::traits::decision_digest;
use gk_seq::datasets::DatasetProfile;
use gk_seq::pairs::SequencePair;
use gk_serve::batcher::BatcherConfig;
use gk_serve::client::{GkClient, Reply};
use gk_serve::server::GkServer;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone)]
struct BenchArgs {
    clients: usize,
    requests: usize,
    req_pairs: usize,
    large_pairs: usize,
    large_every: usize,
    threshold: u32,
    flush_ms: u64,
    deadline_ms: u64,
    backend: String,
    connect: Option<String>,
    json_path: String,
}

impl Default for BenchArgs {
    fn default() -> BenchArgs {
        BenchArgs {
            clients: 8,
            requests: 60,
            req_pairs: 256,
            large_pairs: 2048,
            large_every: 8,
            threshold: 2,
            flush_ms: 2,
            deadline_ms: 75,
            backend: "gpu-sim".to_string(),
            connect: None,
            json_path: "BENCH_serve.json".to_string(),
        }
    }
}

fn parse_args() -> BenchArgs {
    let mut parsed = BenchArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--clients" => parsed.clients = value("--clients").parse().expect("--clients"),
            "--requests" => parsed.requests = value("--requests").parse().expect("--requests"),
            "--req-pairs" => parsed.req_pairs = value("--req-pairs").parse().expect("--req-pairs"),
            "--large-pairs" => {
                parsed.large_pairs = value("--large-pairs").parse().expect("--large-pairs")
            }
            "--large-every" => {
                parsed.large_every = value("--large-every").parse().expect("--large-every")
            }
            "--threshold" => parsed.threshold = value("--threshold").parse().expect("--threshold"),
            "--flush-ms" => parsed.flush_ms = value("--flush-ms").parse().expect("--flush-ms"),
            "--deadline-ms" => {
                parsed.deadline_ms = value("--deadline-ms").parse().expect("--deadline-ms")
            }
            "--backend" => parsed.backend = value("--backend"),
            "--connect" => parsed.connect = Some(value("--connect")),
            "--json" => parsed.json_path = value("--json"),
            other => eprintln!("serve_bench: ignoring unknown flag {other:?}"),
        }
    }
    assert!(parsed.req_pairs <= 256, "small requests must be ≤256 pairs");
    assert!(parsed.clients >= 1 && parsed.requests >= 1);
    parsed
}

/// Deterministic request payload for (client, round): the digest oracle and
/// the submitted pairs are generated from the same seed.
fn payload(args: &BenchArgs, client: usize, round: usize, mixed: bool) -> Vec<SequencePair> {
    let large = mixed && args.large_every > 0 && (round + 1).is_multiple_of(args.large_every);
    let count = if large {
        args.large_pairs
    } else {
        args.req_pairs
    };
    let seed = 0x5eed_0000 + (client as u64) * 1009 + round as u64;
    DatasetProfile::set3().generate(count, seed).pairs
}

struct ClosedLoopRow {
    mode: &'static str,
    workload: &'static str,
    requests: usize,
    pairs: usize,
    elapsed: Duration,
    latencies: Vec<Duration>,
    retries: usize,
    batches: u64,
    segments_per_batch: f64,
    digests_ok: bool,
    dropped: usize,
}

impl ClosedLoopRow {
    fn pairs_per_second(&self) -> f64 {
        self.pairs as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn percentile(latencies: &mut [Duration], q: f64) -> Duration {
    if latencies.is_empty() {
        return Duration::ZERO;
    }
    latencies.sort();
    let index = ((latencies.len() as f64 - 1.0) * q).round() as usize;
    latencies[index.min(latencies.len() - 1)]
}

/// One closed-loop run: `clients` threads each issue `requests` requests
/// back-to-back and wait for each reply, digest-checking it on the spot.
fn closed_loop(
    args: &BenchArgs,
    addr: std::net::SocketAddr,
    oracle: &HashMap<(usize, usize, bool), u64>,
    mode: &'static str,
    workload: &'static str,
    mixed: bool,
) -> ClosedLoopRow {
    let started = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|client_index| {
            let args = args.clone();
            let oracle = oracle.clone();
            std::thread::spawn(move || {
                let client = GkClient::connect_as(addr, client_index as u32).expect("connect");
                let mut latencies = Vec::with_capacity(args.requests);
                let mut pairs_done = 0usize;
                let mut retries = 0usize;
                let mut digests_ok = true;
                let mut dropped = 0usize;
                for round in 0..args.requests {
                    let pairs = payload(&args, client_index, round, mixed);
                    let expected = oracle[&(client_index, round, mixed)];
                    let mut payload_pairs = pairs;
                    loop {
                        let t0 = Instant::now();
                        let pending = client
                            .submit(
                                FilterKind::GateKeeper,
                                args.threshold,
                                Duration::from_millis(args.deadline_ms),
                                payload_pairs.clone(),
                            )
                            .expect("submit");
                        match pending.wait_timeout(Duration::from_secs(30)).expect("wait") {
                            Some(Reply::Decisions(decisions)) => {
                                latencies.push(t0.elapsed());
                                pairs_done += decisions.len();
                                if decision_digest(&decisions) != expected {
                                    digests_ok = false;
                                }
                                break;
                            }
                            Some(Reply::Rejected { retry_after }) => {
                                retries += 1;
                                std::thread::sleep(retry_after.min(Duration::from_millis(50)));
                            }
                            Some(other) => panic!("unexpected reply {other:?}"),
                            None => {
                                dropped += 1;
                                break;
                            }
                        }
                    }
                    payload_pairs.clear();
                }
                (latencies, pairs_done, retries, digests_ok, dropped)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut pairs = 0;
    let mut retries = 0;
    let mut digests_ok = true;
    let mut dropped = 0;
    for handle in handles {
        let (lat, p, r, ok, d) = handle.join().expect("client thread");
        latencies.extend(lat);
        pairs += p;
        retries += r;
        digests_ok &= ok;
        dropped += d;
    }
    ClosedLoopRow {
        mode,
        workload,
        requests: args.clients * args.requests,
        pairs,
        elapsed: started.elapsed(),
        latencies,
        retries,
        batches: 0,
        segments_per_batch: 0.0,
        digests_ok,
        dropped,
    }
}

struct OpenLoopResult {
    offered_rps: f64,
    duration: Duration,
    submitted: usize,
    ok: usize,
    rejected: usize,
    cancelled: usize,
    dropped: usize,
    p99: Duration,
}

/// Open-loop overload leg: fixed-rate paced submissions against a small
/// admission queue; every submission must terminate as ok/rejected.
fn open_loop(
    args: &BenchArgs,
    backend: Arc<dyn FilterBackend>,
    offered_rps: f64,
) -> OpenLoopResult {
    let config = BatcherConfig::default()
        .with_flush_interval(Duration::from_millis(args.flush_ms))
        .with_max_batch_pairs(args.clients * args.req_pairs)
        .with_queue_capacity_pairs(4 * args.clients * args.req_pairs)
        .with_executors(1);
    let server = GkServer::start("127.0.0.1:0", backend, config).expect("bind");
    let client = GkClient::connect(server.local_addr()).expect("connect");

    let duration = Duration::from_millis(1500);
    let interval = Duration::from_secs_f64(1.0 / offered_rps.max(1.0));

    // The collector runs concurrently with submission so reply latency is
    // measured at arrival, not after the offered load ends. The batcher is
    // FIFO enough that waiting in submission order stays accurate.
    let (tx, rx) = std::sync::mpsc::channel::<(Instant, gk_serve::client::PendingReply)>();
    let collector = std::thread::spawn(move || {
        let (mut ok, mut rejected, mut dropped) = (0usize, 0usize, 0usize);
        let mut latencies = Vec::new();
        for (t0, reply) in rx {
            match reply.wait_timeout(Duration::from_secs(30)).expect("wait") {
                Some(Reply::Decisions(_)) => {
                    ok += 1;
                    latencies.push(t0.elapsed());
                }
                Some(Reply::Rejected { .. }) => rejected += 1,
                Some(Reply::Cancelled) => unreachable!("nothing cancels in the open loop"),
                Some(Reply::Error(message)) => panic!("server error: {message}"),
                None => dropped += 1,
            }
        }
        (ok, rejected, dropped, latencies)
    });

    let started = Instant::now();
    let mut submitted = 0usize;
    while started.elapsed() < duration {
        let tick = started + interval.mul_f64(submitted as f64);
        if let Some(sleep) = tick.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        let pairs = payload(
            args,
            submitted % args.clients,
            submitted % args.requests,
            false,
        );
        let t0 = Instant::now();
        let reply = client
            .submit(
                FilterKind::GateKeeper,
                args.threshold,
                Duration::from_millis(args.deadline_ms),
                pairs,
            )
            .expect("submit");
        tx.send((t0, reply)).expect("collector alive");
        submitted += 1;
    }
    drop(tx);
    let (ok, rejected, dropped, mut latencies) = collector.join().expect("collector thread");
    let cancelled = 0usize;
    let p99 = percentile(&mut latencies, 0.99);
    server.shutdown();
    OpenLoopResult {
        offered_rps,
        duration,
        submitted,
        ok,
        rejected,
        cancelled,
        dropped,
        p99,
    }
}

fn run_in_process(
    args: &BenchArgs,
    backend: Arc<dyn FilterBackend>,
    oracle: &HashMap<(usize, usize, bool), u64>,
    coalesce: bool,
    mode: &'static str,
    workload: &'static str,
    mixed: bool,
) -> ClosedLoopRow {
    let config = BatcherConfig::default()
        .with_coalesce(coalesce)
        .with_flush_interval(Duration::from_millis(args.flush_ms))
        .with_max_batch_pairs(args.clients * args.req_pairs)
        .with_executors(1);
    let server = GkServer::start("127.0.0.1:0", backend, config).expect("bind");
    let mut row = closed_loop(args, server.local_addr(), oracle, mode, workload, mixed);
    let stats = server.stats();
    row.batches = stats.batches;
    row.segments_per_batch = if stats.batches > 0 {
        stats.batched_segments as f64 / stats.batches as f64
    } else {
        0.0
    };
    server.shutdown();
    row
}

fn json_row(row: &ClosedLoopRow) -> String {
    let mut latencies = row.latencies.clone();
    let p50 = percentile(&mut latencies, 0.50);
    let p99 = percentile(&mut latencies, 0.99);
    format!(
        concat!(
            "{{\"mode\":\"{}\",\"workload\":\"{}\",\"requests\":{},\"pairs\":{},",
            "\"elapsed_seconds\":{},\"pairs_per_second\":{},\"p50_ms\":{},\"p99_ms\":{},",
            "\"retries\":{},\"batches\":{},\"segments_per_batch\":{:.3},",
            "\"digests_ok\":{},\"dropped\":{}}}"
        ),
        row.mode,
        row.workload,
        row.requests,
        row.pairs,
        row.elapsed.as_secs_f64(),
        row.pairs_per_second(),
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        row.retries,
        row.batches,
        row.segments_per_batch,
        row.digests_ok,
        row.dropped,
    )
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let backend: Arc<dyn FilterBackend> = BackendRegistry::standard(0)
        .get(&args.backend)
        .unwrap_or_else(|| panic!("unknown backend {:?}", args.backend));

    println!(
        "serve_bench: backend {}, {} clients × {} requests, {} pairs/request (large {} every {}), \
         flush {} ms, deadline {} ms, {} cores",
        backend.name(),
        args.clients,
        args.requests,
        args.req_pairs,
        args.large_pairs,
        args.large_every,
        args.flush_ms,
        args.deadline_ms,
        cores
    );

    // Digest oracle: the direct backend invocation for every (client, round)
    // payload, computed before any server exists.
    println!("computing direct-path digest oracle ...");
    let mut oracle = HashMap::new();
    for mixed in [false, true] {
        for client in 0..args.clients {
            for round in 0..args.requests {
                let pairs = payload(&args, client, round, mixed);
                let decisions = backend.run(&FilterJob::new(
                    FilterKind::GateKeeper,
                    args.threshold,
                    &pairs,
                ));
                oracle.insert((client, round, mixed), decision_digest(&decisions));
            }
        }
    }

    // Closed-loop comparison: unbatched baseline vs dynamic batcher, small
    // and mixed workloads.
    let mut rows = Vec::new();
    for (coalesce, mode) in [(false, "unbatched"), (true, "batched")] {
        for (mixed, workload) in [(false, "small"), (true, "mixed")] {
            println!("closed loop: {mode} / {workload} ...");
            rows.push(run_in_process(
                &args,
                backend.clone(),
                &oracle,
                coalesce,
                mode,
                workload,
                mixed,
            ));
        }
    }

    let by = |mode: &str, workload: &str| {
        rows.iter()
            .find(|r| r.mode == mode && r.workload == workload)
            .expect("row")
    };
    let lift =
        by("batched", "small").pairs_per_second() / by("unbatched", "small").pairs_per_second();

    // Open-loop overload: offer ~1.25× the measured batched capacity.
    let batched_rps =
        by("batched", "small").requests as f64 / by("batched", "small").elapsed.as_secs_f64();
    let offered = (batched_rps * 1.25).max(200.0);
    println!("open loop: {offered:.0} req/s offered for 1.5 s ...");
    let open = open_loop(&args, backend.clone(), offered);

    // Optional external-daemon leg.
    let external = args.connect.as_ref().map(|addr| {
        println!("external daemon: closed loop against {addr} ...");
        let addr = addr
            .parse::<std::net::SocketAddr>()
            .expect("--connect HOST:PORT");
        closed_loop(&args, addr, &oracle, "external", "small", false)
    });

    // ---- report ----
    let mut table = String::new();
    table.push_str("<!-- serve-bench:begin -->\n");
    table.push_str(
        "| mode | workload | requests | pairs | Mpairs/s | p50 ms | p99 ms | batches | req/batch |\n",
    );
    table.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for row in rows.iter().chain(external.iter()) {
        let mut latencies = row.latencies.clone();
        let p50 = percentile(&mut latencies, 0.50);
        let p99 = percentile(&mut latencies, 0.99);
        let batches = if row.batches > 0 {
            format!("{} | {:.1}", row.batches, row.segments_per_batch)
        } else {
            "— | —".to_string()
        };
        table.push_str(&format!(
            "| {} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {} |\n",
            row.mode,
            row.workload,
            row.requests,
            row.pairs,
            row.pairs_per_second() / 1e6,
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
            batches,
        ));
    }
    table.push_str(&format!(
        "\nBatching lift (small requests, {} clients): **{lift:.2}×**; open loop at {:.0} req/s: \
         {} ok, {} rejected, {} dropped (p99 {:.2} ms).\n",
        args.clients,
        open.offered_rps,
        open.ok,
        open.rejected,
        open.dropped,
        open.p99.as_secs_f64() * 1e3,
    ));
    table.push_str("<!-- serve-bench:end -->");
    println!("\n{table}\n");

    // ---- JSON ----
    let rows_json: Vec<String> = rows.iter().chain(external.iter()).map(json_row).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"serve_bench\",\n",
            "  \"backend\": \"{}\",\n",
            "  \"cores\": {},\n",
            "  \"clients\": {},\n",
            "  \"requests_per_client\": {},\n",
            "  \"request_pairs\": {},\n",
            "  \"flush_ms\": {},\n",
            "  \"deadline_ms\": {},\n",
            "  \"batching_lift\": {},\n",
            "  \"closed_loop\": [\n    {}\n  ],\n",
            "  \"open_loop\": {{\"offered_rps\":{},\"duration_seconds\":{},\"submitted\":{},",
            "\"ok\":{},\"rejected\":{},\"cancelled\":{},\"dropped\":{},\"p99_ms\":{}}}\n",
            "}}\n"
        ),
        backend.name(),
        cores,
        args.clients,
        args.requests,
        args.req_pairs,
        args.flush_ms,
        args.deadline_ms,
        lift,
        rows_json.join(",\n    "),
        open.offered_rps,
        open.duration.as_secs_f64(),
        open.submitted,
        open.ok,
        open.rejected,
        open.cancelled,
        open.dropped,
        open.p99.as_secs_f64() * 1e3,
    );
    match std::fs::write(&args.json_path, &json) {
        Ok(()) => println!("wrote {}", args.json_path),
        Err(err) => eprintln!("warning: could not write {}: {err}", args.json_path),
    }

    // ---- acceptance asserts ----
    let all_rows: Vec<&ClosedLoopRow> = rows.iter().chain(external.iter()).collect();
    for row in &all_rows {
        assert!(
            row.digests_ok,
            "{}/{}: service decisions diverged from the direct backend path",
            row.mode, row.workload
        );
        assert_eq!(
            row.dropped, 0,
            "{}/{}: requests dropped without a terminal reply",
            row.mode, row.workload
        );
    }
    assert_eq!(
        open.ok + open.rejected + open.cancelled + open.dropped,
        open.submitted,
        "open loop lost track of submissions"
    );
    assert_eq!(
        open.dropped, 0,
        "open loop dropped requests without a reject"
    );

    let mut batched_small = by("batched", "small").latencies.clone();
    let p99 = percentile(&mut batched_small, 0.99);
    let bound = Duration::from_millis(args.deadline_ms + args.flush_ms) + Duration::from_millis(25);
    assert!(
        p99 <= bound,
        "batched small-request p99 {:?} exceeds deadline + flush interval bound {:?}",
        p99,
        bound
    );

    if cores >= 2 {
        assert!(
            lift >= 2.0,
            "batching lift {lift:.2}× below the 2× acceptance bar \
             ({} clients, {} pairs/request, {} cores)",
            args.clients,
            args.req_pairs,
            cores
        );
        println!("acceptance: batching lift {lift:.2}× ≥ 2× ✓");
    } else {
        println!(
            "acceptance: SKIPPED lift assert — single-core host (measured {lift:.2}×); \
             coalescing needs ≥2 cores to beat the per-request path"
        );
    }
    println!("serve_bench: all asserts passed");
}
