//! Table 1 — effect of the maximum number of reads processed per batch on the
//! overall / encode / kernel / filter times of mrFAST + GateKeeper-GPU.
//!
//! The paper maps chromosome 1 with batch limits of 100, 1,000, 10,000 and 100,000
//! reads, in both encoding modes, and finds that larger batches reduce every time
//! component because fewer host↔device transfers are issued.
//!
//! Usage: `cargo run --release -p gk-bench --bin table1_batch_size [--reads N] [--genome N]`

use gk_bench::datasets::{whole_genome_reads, whole_genome_reference};
use gk_bench::table::{fmt, Table};
use gk_bench::HarnessArgs;
use gk_core::config::{EncodingActor, FilterConfig};
use gk_core::gpu::GateKeeperGpu;
use gk_mapper::pipeline::{MapperConfig, PreFilter, ReadMapper};
use gk_seq::simulate::ErrorProfile;

fn main() {
    let args = HarnessArgs::parse();
    let genome_len = args.genome(400_000);
    let read_count = args.reads(4_000);
    let threshold = 5u32;

    println!("Table 1: effect of the maximum number of reads processed per batch");
    println!(
        "(synthetic chromosome of {genome_len} bp, {read_count} reads of 100 bp, e = {threshold})\n"
    );

    let reference = whole_genome_reference(genome_len);
    let reads = whole_genome_reads(&reference, 100, read_count, ErrorProfile::illumina());

    let mut table = Table::new(vec![
        "Max # Reads",
        "Encoding",
        "Overall (s)",
        "Encode/Copy (s)",
        "Kernel (s)",
        "Filter (s)",
    ]);

    let batch_limits = if args.full {
        vec![100usize, 1_000, 10_000, 100_000]
    } else {
        vec![100usize, 1_000, 10_000, read_count.max(100)]
    };

    for &max_reads in &batch_limits {
        for encoding in [EncodingActor::Host, EncodingActor::Device] {
            let mapper = ReadMapper::new(
                reference.clone(),
                MapperConfig::new(threshold).with_max_reads_per_batch(max_reads),
            );
            let gpu = GateKeeperGpu::with_default_device(
                FilterConfig::new(100, threshold)
                    .with_encoding(encoding)
                    .with_max_reads_per_batch(max_reads),
            );
            let outcome = mapper.map_reads(&reads, &PreFilter::Gpu(gpu));
            let stats = outcome.stats;
            let encoding_name = match encoding {
                EncodingActor::Host => "Host",
                EncodingActor::Device => "Device",
            };
            table.row(vec![
                max_reads.to_string(),
                encoding_name.to_string(),
                fmt(stats.total_seconds, 3),
                fmt(stats.preprocessing_seconds, 3),
                fmt(stats.filter_kernel_seconds, 4),
                fmt(stats.filter_seconds, 3),
            ]);
        }
    }

    table.print();
    println!("Expected shape (paper): every column shrinks as the batch grows; 100,000 reads per batch is best.");
}
