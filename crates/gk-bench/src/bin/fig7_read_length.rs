//! Figure 7 (and Sup. Table S.20) — effect of read length on single-GPU filtering
//! throughput (filter time), for error thresholds 0 and 4, in both setups and both
//! encoding modes.
//!
//! Usage: `cargo run --release -p gk-bench --bin fig7_read_length [--pairs N]`

use gk_bench::datasets::throughput_set;
use gk_bench::runner::gpu_throughput;
use gk_bench::table::{fmt, Table};
use gk_bench::{HarnessArgs, SETUP1, SETUP2};
use gk_core::config::EncodingActor;

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(40_000);

    println!("Figure 7 / Table S.20: effect of read length on single-GPU filtering throughput");
    println!("(millions of filtrations per second with respect to filter time, {pairs} pairs per point)\n");

    let mut table = Table::new(vec![
        "e",
        "Read length",
        "Setup 1 device-enc",
        "Setup 1 host-enc",
        "Setup 2 device-enc",
        "Setup 2 host-enc",
    ]);

    for e in [0u32, 4] {
        for read_len in [100usize, 150, 250] {
            let set = throughput_set(read_len, pairs);
            let s1_dev = gpu_throughput(&SETUP1, 1, &set, e, EncodingActor::Device);
            let s1_host = gpu_throughput(&SETUP1, 1, &set, e, EncodingActor::Host);
            let s2_dev = gpu_throughput(&SETUP2, 1, &set, e, EncodingActor::Device);
            let s2_host = gpu_throughput(&SETUP2, 1, &set, e, EncodingActor::Host);
            table.row(vec![
                e.to_string(),
                format!("{read_len}bp"),
                fmt(s1_dev.filter_mps, 2),
                fmt(s1_host.filter_mps, 2),
                fmt(s2_dev.filter_mps, 2),
                fmt(s2_host.filter_mps, 2),
            ]);
        }
    }

    table.print();
    println!("Expected shape (paper): throughput falls monotonically with read length (roughly 3.2 → 2.1 → 1.4");
    println!("Mpairs/s device-encoded in Setup 1), and device encoding beats host encoding on filter time.");
}
