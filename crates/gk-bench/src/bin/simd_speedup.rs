//! SIMD-vs-scalar CPU throughput comparison — the acceptance harness of the
//! lane-parallel filter kernels.
//!
//! Runs the Table 2 CPU row (100 bp, e = 4) twice per core count for **all
//! four** lane-parallel filters — GateKeeper, MAGNET, Shouji, SneakySnake —
//! once on the lane-parallel SIMD path (`SimdMode::Lanes`, blocks of pairs
//! transposed into the struct-of-arrays layout and filtered four lanes at a
//! time) and once on the scalar reference (`SimdMode::Scalar`, the per-bit /
//! per-byte historical baselines). Each filter's run **hard-asserts** that the
//! two decision streams are FNV-digest-identical and that the lane path clears
//! the 4x end-to-end speedup bar on the single-core row, then prints a
//! Markdown comparison table between `<!-- simd-vs-scalar:begin/end -->`
//! markers so CI can lift it straight into the job summary.
//!
//! The three non-GateKeeper filters run on a quarter-size set: their scalar
//! baselines walk bases one at a time (MAGNET's differential leg runs per-bit
//! reference primitives), so a full-size scalar leg would dominate the bench's
//! wall clock without sharpening the comparison.
//!
//! Usage: `cargo run --release -p gk-bench --bin simd_speedup
//!         [--pairs N] [--full] [--help]`

use std::time::Instant;

use gk_bench::datasets::throughput_set;
use gk_bench::runner::{shared_pool, speedup, ThroughputPoint};
use gk_bench::table::fmt;
use gk_bench::{HarnessArgs, SETUP1};
use gk_core::cpu::GateKeeperCpu;
use gk_filters::{
    decision_digest, MagnetFilter, PreAlignmentFilter, ShoujiFilter, SimdMode, SneakySnakeFilter,
};
use gk_seq::pairs::PairSet;

struct ModeRun {
    point: ThroughputPoint,
    digest: u64,
    accepted: usize,
}

/// GateKeeper leg: the full CPU baseline with its kernel/filter timing split.
fn measure_gatekeeper(set: &PairSet, threshold: u32, cores: usize, mode: SimdMode) -> ModeRun {
    let run = GateKeeperCpu::with_pool(threshold, cores, shared_pool(cores))
        .with_simd_mode(mode)
        .filter_set(set);
    ModeRun {
        point: ThroughputPoint::new(set.len(), run.kernel_seconds, run.filter_seconds),
        digest: decision_digest(&run.decisions),
        accepted: run.accepted(),
    }
}

/// Generic leg for the widened filters: wall-clock the batch surface on the
/// shared pool. These paths have no host/kernel split, so kernel time equals
/// filter time.
fn measure_filter(filter: &dyn PreAlignmentFilter, set: &PairSet, cores: usize) -> ModeRun {
    let start = Instant::now();
    let decisions = shared_pool(cores).install(|| filter.filter_batch(&set.pairs));
    let seconds = start.elapsed().as_secs_f64();
    ModeRun {
        point: ThroughputPoint::new(set.len(), seconds, seconds),
        digest: decision_digest(&decisions),
        accepted: decisions.iter().filter(|d| d.accepted).count(),
    }
}

fn summary_row(
    filter: &str,
    cores: usize,
    mode: &str,
    run: &ModeRun,
    speedup_col: Option<f64>,
) -> String {
    format!(
        "| {filter} | {cores} | {mode} | `{:#018x}` | {} | {} | {} |",
        run.digest,
        fmt(run.point.filter_seconds, 4),
        fmt(run.point.filter_mps, 2),
        speedup_col
            .map(|s| format!("{}x", fmt(s, 2)))
            .unwrap_or_else(|| "baseline".to_string()),
    )
}

fn report_pair(
    name: &str,
    cores: usize,
    scalar: &ModeRun,
    lanes: &ModeRun,
    rows: &mut Vec<String>,
) -> f64 {
    assert_eq!(
        lanes.digest, scalar.digest,
        "{name}: decision streams diverged between SIMD modes at {cores} cores — lane-kernel bug"
    );
    assert_eq!(lanes.accepted, scalar.accepted, "{name}");

    let end_to_end = speedup(scalar.point.filter_seconds, lanes.point.filter_seconds);
    println!("--- {name}, {cores} core(s) ---");
    println!(
        "decisions    : byte-identical (digest {:#018x}, {} accepted)",
        lanes.digest, lanes.accepted
    );
    println!(
        "scalar       : filter {} s ({} Mpairs/s)",
        fmt(scalar.point.filter_seconds, 4),
        fmt(scalar.point.filter_mps, 2)
    );
    println!(
        "lanes        : filter {} s ({} Mpairs/s)",
        fmt(lanes.point.filter_seconds, 4),
        fmt(lanes.point.filter_mps, 2)
    );
    println!(
        "end-to-end   : {}x speedup (filter time)\n",
        fmt(end_to_end, 2)
    );
    rows.push(summary_row(name, cores, "scalar", scalar, None));
    rows.push(summary_row(name, cores, "lanes", lanes, Some(end_to_end)));
    end_to_end
}

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(if args.full { 1_000_000 } else { 200_000 });
    let threshold = 4u32;
    let read_len = 100usize;
    let set = throughput_set(read_len, pairs);
    let widened_pairs = (pairs / 4).max(1);
    let widened_set = throughput_set(read_len, widened_pairs);
    let core_counts = [1usize, SETUP1.cpu_cores];

    println!(
        "SIMD-vs-scalar comparison across all four filters ({read_len} bp, e = {threshold}, \
         {pairs} pairs for GateKeeper, {widened_pairs} for MAGNET/Shouji/SneakySnake)"
    );
    println!("Lane path: 4-lane struct-of-arrays blocks over 64-bit words; scalar path: per-bit / per-byte reference kernels.\n");

    // Throwaway warmup so neither measured mode pays first-touch costs
    // (worker spawn-up, allocator warm-up).
    for &cores in &core_counts {
        let _ = measure_gatekeeper(&set, threshold, cores, SimdMode::Lanes);
    }

    let mut rows = Vec::new();
    // Single-core end-to-end speedups, one per filter — each must clear 4x.
    let mut bars: Vec<(String, f64)> = Vec::new();

    for &cores in &core_counts {
        let scalar = measure_gatekeeper(&set, threshold, cores, SimdMode::Scalar);
        let lanes = measure_gatekeeper(&set, threshold, cores, SimdMode::Lanes);
        let end_to_end = report_pair("GateKeeper", cores, &scalar, &lanes, &mut rows);
        if cores == 1 {
            bars.push(("GateKeeper".to_string(), end_to_end));
        }
    }

    type Make = Box<dyn Fn(SimdMode) -> Box<dyn PreAlignmentFilter>>;
    let widened: Vec<Make> = vec![
        Box::new(move |m| Box::new(MagnetFilter::new(threshold).with_simd_mode(m))),
        Box::new(move |m| Box::new(ShoujiFilter::new(threshold).with_simd_mode(m))),
        Box::new(move |m| Box::new(SneakySnakeFilter::new(threshold).with_simd_mode(m))),
    ];
    for make in &widened {
        let name = make(SimdMode::Lanes).name().to_string();
        for &cores in &core_counts {
            let scalar = measure_filter(make(SimdMode::Scalar).as_ref(), &widened_set, cores);
            let lanes = measure_filter(make(SimdMode::Lanes).as_ref(), &widened_set, cores);
            let end_to_end = report_pair(&name, cores, &scalar, &lanes, &mut rows);
            if cores == 1 {
                bars.push((name.clone(), end_to_end));
            }
        }
    }

    for (name, single) in &bars {
        assert!(
            *single >= 4.0,
            "{name}: lane path must clear the 4x end-to-end bar over the scalar baseline \
             on the single-core row, measured {single:.2}x"
        );
    }

    // Markdown block for the CI job summary (lifted verbatim by the workflow).
    println!("<!-- simd-vs-scalar:begin -->");
    println!(
        "### `simd_speedup` SIMD-vs-scalar comparison ({read_len} bp, e = {threshold}, \
         {pairs} pairs; widened filters on {widened_pairs})"
    );
    println!();
    println!("| filter | cores | mode | decisions digest | filter s | Mpairs/s | speedup |");
    println!("|---|---|---|---|---|---|---|");
    for row in &rows {
        println!("{row}");
    }
    println!();
    let bar_summary = bars
        .iter()
        .map(|(name, s)| format!("{name} **{}x**", fmt(*s, 2)))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "Decisions byte-identical across modes for every filter: **yes**; \
         single-core end-to-end speedups (bar: 4x each): {bar_summary}."
    );
    println!("<!-- simd-vs-scalar:end -->");
}
