//! SIMD-vs-scalar CPU throughput comparison — the acceptance harness of the
//! lane-parallel filter kernels.
//!
//! Runs the Table 2 GateKeeper-CPU row (100 bp, e = 4) twice per core count:
//! once on the lane-parallel SIMD path (`SimdMode::Lanes`, blocks of pairs
//! transposed into the struct-of-arrays layout and filtered four lanes at a
//! time) and once on the per-bit scalar reference (`SimdMode::Scalar`, the
//! historical baseline). The run **hard-asserts** that the two decision
//! streams are FNV-digest-identical and that the lane path clears the 4x
//! end-to-end speedup bar on the single-core row, then prints a Markdown
//! comparison table between `<!-- simd-vs-scalar:begin/end -->` markers so CI
//! can lift it straight into the job summary.
//!
//! Usage: `cargo run --release -p gk-bench --bin simd_speedup
//!         [--pairs N] [--full] [--help]`

use gk_bench::datasets::throughput_set;
use gk_bench::runner::{shared_pool, speedup, ThroughputPoint};
use gk_bench::table::fmt;
use gk_bench::{HarnessArgs, SETUP1};
use gk_core::cpu::GateKeeperCpu;
use gk_filters::SimdMode;
use gk_seq::pairs::PairSet;

/// Order-sensitive FNV-1a-style digest of a decision stream (same construction
/// as `streaming_scale`), so the two modes compare byte-for-byte.
#[derive(Clone, Copy)]
struct DecisionDigest(u64);

impl Default for DecisionDigest {
    fn default() -> DecisionDigest {
        DecisionDigest(0xcbf2_9ce4_8422_2325) // FNV-1a offset basis
    }
}

impl DecisionDigest {
    fn update(&mut self, decisions: &[gk_filters::FilterDecision]) {
        let mut h = self.0;
        for d in decisions {
            let word = (u64::from(d.estimated_edits) << 2)
                | (u64::from(d.accepted) << 1)
                | u64::from(d.undefined);
            h = (h ^ word).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

struct ModeRun {
    point: ThroughputPoint,
    digest: u64,
    accepted: usize,
}

fn measure(set: &PairSet, threshold: u32, cores: usize, mode: SimdMode) -> ModeRun {
    let run = GateKeeperCpu::with_pool(threshold, cores, shared_pool(cores))
        .with_simd_mode(mode)
        .filter_set(set);
    let mut digest = DecisionDigest::default();
    digest.update(&run.decisions);
    ModeRun {
        point: ThroughputPoint::new(set.len(), run.kernel_seconds, run.filter_seconds),
        digest: digest.0,
        accepted: run.accepted(),
    }
}

fn summary_row(cores: usize, mode: &str, run: &ModeRun, speedup_col: Option<f64>) -> String {
    format!(
        "| {cores} | {mode} | `{:#018x}` | {} | {} | {} | {} |",
        run.digest,
        fmt(run.point.kernel_seconds, 4),
        fmt(run.point.filter_seconds, 4),
        fmt(run.point.filter_mps, 2),
        speedup_col
            .map(|s| format!("{}x", fmt(s, 2)))
            .unwrap_or_else(|| "baseline".to_string()),
    )
}

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(if args.full { 1_000_000 } else { 200_000 });
    let threshold = 4u32;
    let read_len = 100usize;
    let set = throughput_set(read_len, pairs);
    let core_counts = [1usize, SETUP1.cpu_cores];

    println!(
        "SIMD-vs-scalar GateKeeper-CPU comparison ({read_len} bp, e = {threshold}, {pairs} pairs)"
    );
    println!("Lane path: 4-lane struct-of-arrays blocks over 64-bit words; scalar path: per-bit reference kernels.\n");

    // Throwaway warmup so neither measured mode pays first-touch costs
    // (worker spawn-up, allocator warm-up).
    for &cores in &core_counts {
        let _ = measure(&set, threshold, cores, SimdMode::Lanes);
    }

    let mut rows = Vec::new();
    let mut single_core_speedup = None;
    for &cores in &core_counts {
        let scalar = measure(&set, threshold, cores, SimdMode::Scalar);
        let lanes = measure(&set, threshold, cores, SimdMode::Lanes);
        assert_eq!(
            lanes.digest, scalar.digest,
            "decision streams diverged between SIMD modes at {cores} cores — lane-kernel bug"
        );
        assert_eq!(lanes.accepted, scalar.accepted);

        let end_to_end = speedup(scalar.point.filter_seconds, lanes.point.filter_seconds);
        if cores == 1 {
            single_core_speedup = Some(end_to_end);
        }
        println!("--- {cores} core(s) ---");
        println!(
            "decisions    : byte-identical (digest {:#018x}, {} accepted)",
            lanes.digest, lanes.accepted
        );
        println!(
            "scalar       : kernel {} s, filter {} s ({} Mpairs/s)",
            fmt(scalar.point.kernel_seconds, 4),
            fmt(scalar.point.filter_seconds, 4),
            fmt(scalar.point.filter_mps, 2)
        );
        println!(
            "lanes        : kernel {} s (encode fused in), filter {} s ({} Mpairs/s)",
            fmt(lanes.point.kernel_seconds, 4),
            fmt(lanes.point.filter_seconds, 4),
            fmt(lanes.point.filter_mps, 2)
        );
        println!(
            "end-to-end   : {}x speedup (filter time)\n",
            fmt(end_to_end, 2)
        );

        rows.push(summary_row(cores, "scalar", &scalar, None));
        rows.push(summary_row(cores, "lanes", &lanes, Some(end_to_end)));
    }

    let single = single_core_speedup.expect("single-core row always measured");
    assert!(
        single >= 4.0,
        "lane path must clear the 4x end-to-end bar over the scalar baseline \
         on the single-core row, measured {single:.2}x"
    );

    // Markdown block for the CI job summary (lifted verbatim by the workflow).
    println!("<!-- simd-vs-scalar:begin -->");
    println!("### `simd_speedup` SIMD-vs-scalar comparison ({pairs} pairs, {read_len} bp, e = {threshold})");
    println!();
    println!("| cores | mode | decisions digest | kernel s | filter s | Mpairs/s | speedup |");
    println!("|---|---|---|---|---|---|---|");
    for row in &rows {
        println!("{row}");
    }
    println!();
    println!(
        "Decisions byte-identical across modes: **yes**; single-core end-to-end speedup **{}x** (bar: 4x).",
        fmt(single, 2)
    );
    println!("<!-- simd-vs-scalar:end -->");
}
