//! §5.4.1 — resource utilisation analysis: theoretical versus achieved warp
//! occupancy, warp execution efficiency and SM efficiency of the GateKeeper-GPU
//! kernel for 100 bp and 250 bp datasets on both setups, plus the occupancy
//! trade-off table for different register budgets and block sizes.
//!
//! Usage: `cargo run --release -p gk-bench --bin occupancy_analysis [--pairs N]`

use gk_bench::datasets::throughput_set;
use gk_bench::table::{fmt, Table};
use gk_bench::{HarnessArgs, SETUP1, SETUP2};
use gk_core::config::{EncodingActor, FilterConfig};
use gk_core::gpu::GateKeeperGpu;
use gk_gpusim::occupancy::{theoretical_occupancy, KernelResources};

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(40_000);

    println!("Section 5.4.1: resource utilisation of the GateKeeper-GPU kernel\n");

    // Part 1: the occupancy calculator view (why 1024-thread blocks at 50%).
    let device = SETUP1.device();
    let mut occupancy_table = Table::new(vec![
        "Registers/thread",
        "Threads/block",
        "Blocks/SM",
        "Active warps",
        "Theoretical occupancy",
    ])
    .with_title("CUDA occupancy calculator (GTX 1080 Ti)");
    for (regs, tpb) in [
        (32u32, 1024u32),
        (40, 1024),
        (48, 256),
        (48, 512),
        (48, 1024),
    ] {
        let result = theoretical_occupancy(
            &device,
            &KernelResources {
                registers_per_thread: regs,
                threads_per_block: tpb,
                shared_memory_per_block: 0,
            },
        );
        occupancy_table.row(vec![
            regs.to_string(),
            tpb.to_string(),
            result.blocks_per_sm.to_string(),
            result.active_warps_per_sm.to_string(),
            format!("{}%", fmt(result.occupancy * 100.0, 1)),
        ]);
    }
    occupancy_table.print();

    // Part 2: achieved metrics from profiled runs.
    let mut achieved = Table::new(vec![
        "Setup",
        "Read length",
        "Encoding",
        "Theoretical occ.",
        "Achieved occ.",
        "Warp exec. eff.",
        "SM efficiency",
    ])
    .with_title("Profiled kernel metrics");

    for setup in [SETUP1, SETUP2] {
        for read_len in [100usize, 250] {
            for encoding in [EncodingActor::Device, EncodingActor::Host] {
                let e = if read_len == 100 { 4 } else { 10 };
                let set = throughput_set(read_len, pairs);
                let gpu = GateKeeperGpu::new(
                    setup.device(),
                    FilterConfig::new(read_len, e).with_encoding(encoding),
                );
                let run = gpu.filter_set(&set);
                achieved.row(vec![
                    setup.name.to_string(),
                    format!("{read_len}bp"),
                    match encoding {
                        EncodingActor::Device => "Device".into(),
                        EncodingActor::Host => "Host".into(),
                    },
                    format!("{}%", fmt(run.theoretical_occupancy * 100.0, 1)),
                    format!("{}%", fmt(run.achieved_occupancy * 100.0, 1)),
                    format!("{}%", fmt(run.warp_execution_efficiency * 100.0, 1)),
                    format!("{}%", fmt(run.sm_efficiency * 100.0, 1)),
                ]);
            }
        }
    }
    achieved.print();

    println!("Expected shape (paper): 48 registers per thread cap theoretical occupancy at 63% (256-thread");
    println!("blocks) or 50% (1024-thread blocks, the configuration used); achieved occupancy lands within a");
    println!("few points of 50%; SM efficiency stays above 95%; warp execution efficiency is lower at 100bp");
    println!("than at 250bp.");
}
