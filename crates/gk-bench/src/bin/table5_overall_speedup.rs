//! Table 5 (and Sup. Tables S.24/S.25) — speedup of mrFAST with GateKeeper-GPU over
//! mrFAST without any pre-alignment filter, for the combined filtering + DP time and
//! for the overall mapping time, in both setups and both encoding modes.
//!
//! Usage: `cargo run --release -p gk-bench --bin table5_overall_speedup [--reads N]
//! [--genome N] [--full]`
//! (`--full` adds the simulated 150 bp and 300 bp datasets of Tables S.24/S.25.)

use gk_bench::datasets::{whole_genome_reads, whole_genome_reference};
use gk_bench::runner::speedup;
use gk_bench::table::{fmt, fmt_speedup, Table};
use gk_bench::{HarnessArgs, Setup, SETUP1, SETUP2};
use gk_core::config::{EncodingActor, FilterConfig};
use gk_core::gpu::GateKeeperGpu;
use gk_mapper::pipeline::{MapperConfig, PreFilter, ReadMapper};
use gk_seq::simulate::ErrorProfile;

fn dataset_rows(
    table: &mut Table,
    dataset: &str,
    read_len: usize,
    e: u32,
    reads: usize,
    genome: usize,
    profile: ErrorProfile,
) {
    let reference = whole_genome_reference(genome);
    let read_set = whole_genome_reads(&reference, read_len, reads, profile);
    let mapper = ReadMapper::new(reference, MapperConfig::new(e));

    let unfiltered = mapper.map_reads(&read_set, &PreFilter::None);
    let base_dp = unfiltered.stats.verification_seconds;
    let base_overall = unfiltered.stats.total_seconds;
    table.row(vec![
        format!("{dataset}  No Filter"),
        "-".into(),
        "-".into(),
        fmt(base_dp, 3),
        "NA".into(),
        fmt(base_overall, 3),
        "NA".into(),
    ]);

    for setup in [SETUP1, SETUP2] {
        for encoding in [EncodingActor::Device, EncodingActor::Host] {
            let (filter_dp, overall, setup_name, label) =
                run_with_filter(&mapper, &read_set, read_len, e, &setup, encoding);
            table.row(vec![
                format!("{dataset}  {label}"),
                setup_name,
                format!("e={e}"),
                fmt(filter_dp, 3),
                fmt_speedup(speedup(base_dp, filter_dp)),
                fmt(overall, 3),
                fmt_speedup(speedup(base_overall, overall)),
            ]);
        }
    }
}

fn run_with_filter(
    mapper: &ReadMapper,
    reads: &[gk_seq::fastq::FastqRecord],
    read_len: usize,
    e: u32,
    setup: &Setup,
    encoding: EncodingActor,
) -> (f64, f64, String, &'static str) {
    let gpu = GateKeeperGpu::new(
        setup.device(),
        FilterConfig::new(read_len, e).with_encoding(encoding),
    );
    let outcome = mapper.map_reads(reads, &PreFilter::Gpu(gpu));
    let stats = outcome.stats;
    // Filtering + DP time uses the filter's kernel time, as the paper does. For the
    // overall time the wall clock spent *computing* the simulated device's decisions
    // on the host is replaced by the modelled filter time (that work would run on
    // the GPU), i.e. overall = preprocessing + modelled filter + verification +
    // the mapper's remaining host work.
    let filtering_plus_dp = stats.filtering_plus_dp_seconds();
    let other_host_work = (stats.total_seconds
        - stats.preprocessing_seconds
        - stats.verification_seconds
        - stats.filter_wall_seconds)
        .max(0.0);
    let overall = stats.preprocessing_seconds
        + stats.filter_seconds
        + stats.verification_seconds
        + other_host_work;
    let label = match encoding {
        EncodingActor::Device => "GateKeeper-GPU (d)",
        EncodingActor::Host => "GateKeeper-GPU (h)",
    };
    (filtering_plus_dp, overall, setup.name.to_string(), label)
}

fn main() {
    let args = HarnessArgs::parse();
    let genome = args.genome(400_000);
    let reads = args.reads(4_000);

    println!(
        "Table 5: speedup of mrFAST with GateKeeper-GPU over mrFAST without a pre-alignment filter"
    );
    println!("(synthetic chromosome of {genome} bp)\n");

    let mut table = Table::new(vec![
        "mrFAST w/",
        "Setup",
        "e",
        "Filtering+DP (s)",
        "Speedup",
        "Overall (s)",
        "Speedup",
    ]);

    // Table 5: the real 100bp set at e = 5.
    dataset_rows(
        &mut table,
        "100bp real-like",
        100,
        5,
        reads,
        genome,
        ErrorProfile::illumina(),
    );

    if args.full {
        // Table S.24: sim set 1 (300bp, rich deletions, e = 15).
        dataset_rows(
            &mut table,
            "sim set 1 (300bp)",
            300,
            15,
            reads / 4,
            genome,
            ErrorProfile::rich_deletion(),
        );
        // Table S.25: sim set 2 (150bp, low indel, e = 8).
        dataset_rows(
            &mut table,
            "sim set 2 (150bp)",
            150,
            8,
            reads / 2,
            genome,
            ErrorProfile::low_indel(),
        );
    }

    table.print();
    println!(
        "Expected shape (paper): filtering+DP speedup up to ~2.9x (Setup 1) and ~1.7x (Setup 2);"
    );
    println!("overall speedup up to ~1.4x; the small 300bp set shows no overall speedup.");
}
