//! Whole-genome-scale streaming run: drives a paper-sized pair stream through
//! the triple-buffered GPU batch pipeline without ever materializing the pair
//! set (§3.4 multi-stream prefetch exploited end to end).
//!
//! The default run streams 1 million pairs; `--full` uses the paper's 30 million
//! (the size of every "Set N"). Memory stays bounded by the source batch size
//! regardless of `--pairs`, and the report shows the overlapped pipeline
//! makespan next to what the same work costs serialized.
//!
//! Usage: `cargo run --release -p gk-bench --bin streaming_scale
//!         [--pairs N] [--full] [--chunk N] [--serialized]`

use gk_bench::datasets::PAPER_SET_SIZE;
use gk_bench::runner::streaming_gpu_throughput;
use gk_bench::table::fmt;
use gk_bench::{HarnessArgs, SETUP1};
use gk_core::config::EncodingActor;
use gk_core::timing::{billions_in_40_minutes, millions_per_second};
use gk_seq::datasets::DatasetProfile;
use std::time::Instant;

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(if args.full { PAPER_SET_SIZE } else { 1_000_000 });
    let chunk = args.chunk(250_000);
    // `--chunk 0` means auto-size the *pipeline* chunks; the source still needs
    // a real batch size to stay bounded without degenerating to 1-pair batches.
    let source_batch = if chunk == 0 {
        250_000
    } else {
        chunk.clamp(1, 500_000)
    };
    let threshold = 5u32;
    let profile = DatasetProfile::set3();

    println!(
        "Streaming GateKeeper-GPU scale run ({} profile)",
        profile.name
    );
    println!(
        "pairs = {pairs}, source batch = {source_batch}, requested chunk = {chunk}, e = {threshold}, overlap = {}\n",
        !args.serialized
    );

    let wall_start = Instant::now();
    let source = profile.stream_batches(pairs, 0x6B67_5F73, source_batch);
    let run = streaming_gpu_throughput(
        &SETUP1,
        source,
        threshold,
        EncodingActor::Host,
        !args.serialized,
        chunk,
    );
    let wall = wall_start.elapsed().as_secs_f64();

    println!("pairs filtered          : {}", run.pairs);
    println!("accepted                : {}", run.accepted);
    println!("rejected                : {}", run.rejected());
    println!("undefined pass-through  : {}", run.undefined);
    println!(
        "kernel launches (chunks): {} of {} pairs (resolved pipeline chunk)",
        run.batches, run.pipeline.chunk_pairs
    );
    println!();
    println!("simulated timeline (three streams: encode+H2D / kernel / D2H):");
    println!(
        "  serialized stages       : {} s",
        fmt(run.pipeline.serialized_seconds, 4)
    );
    println!(
        "  overlapped makespan     : {} s",
        fmt(run.pipeline.overlapped_seconds, 4)
    );
    println!(
        "  overlap saves           : {} s ({}x speedup)",
        fmt(run.pipeline.savings_seconds(), 4),
        fmt(run.pipeline.speedup(), 2)
    );
    println!(
        "  reported filter time    : {} s",
        fmt(run.filter_seconds(), 4)
    );
    println!(
        "  reported kernel time    : {} s",
        fmt(run.kernel_seconds(), 4)
    );
    println!();
    println!(
        "throughput (filter time): {} Mpairs/s = {} B/40min",
        fmt(millions_per_second(run.pairs, run.filter_seconds()), 2),
        fmt(billions_in_40_minutes(run.pairs, run.filter_seconds()), 1)
    );
    println!(
        "unified-memory traffic  : {:.1} MiB to device, {:.3} MiB back",
        run.memory_stats.bytes_to_device as f64 / (1024.0 * 1024.0),
        run.memory_stats.bytes_to_host as f64 / (1024.0 * 1024.0)
    );
    println!(
        "host wall clock         : {} s (functional simulation; resident set bounded by one source batch)",
        fmt(wall, 1)
    );
    println!();
    println!(
        "Expected shape (paper, §3.4): prefetching the next batch on separate streams while the"
    );
    println!("kernel runs hides most of the transfer, so the overlapped filter time beats the serialized");
    println!("sum on every multi-chunk run; decisions are identical either way.");
}
