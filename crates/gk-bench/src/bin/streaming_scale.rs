//! Whole-genome-scale streaming run: drives a paper-sized pair stream through
//! the triple-buffered GPU batch pipeline without ever materializing the pair
//! set (§3.4 multi-stream prefetch exploited end to end).
//!
//! The default run streams 1 million pairs **twice** — once with the real
//! host-side prefetch (encode of chunk *i+1* on the worker pool while chunk
//! *i*'s kernel closure runs; on pools with ≥ 3 workers the next source batch
//! is also generated ahead on the pool) and once with the serial host path —
//! and reports the measured host wall-clock of both next to the simulated
//! timeline, verifying along the way that the decisions are byte-identical.
//! `--full` uses the paper's 30 million pairs in a single prefetch-on pass;
//! `--host-serial` forces a single pass on the serial host path (no pool
//! prefetch work is spawned at all). Memory stays bounded by the source batch
//! size plus the bounded number of encoded chunks in flight regardless of
//! `--pairs`.
//!
//! Usage: `cargo run --release -p gk-bench --bin streaming_scale
//!         [--pairs N] [--full] [--chunk N] [--serialized] [--host-serial]`

use gk_bench::datasets::PAPER_SET_SIZE;
use gk_bench::runner::streaming_gpu_throughput_with;
use gk_bench::table::fmt;
use gk_bench::{HarnessArgs, SETUP1};
use gk_core::config::EncodingActor;
use gk_core::pipeline::StreamFilterRun;
use gk_core::timing::{billions_in_40_minutes, millions_per_second};
use gk_seq::datasets::DatasetProfile;
use std::time::Instant;

/// Order-sensitive FNV-1a-style digest of a decision stream, so two runs can
/// be compared byte-for-byte without materializing 30M decisions.
#[derive(Clone, Copy)]
struct DecisionDigest(u64);

impl Default for DecisionDigest {
    fn default() -> DecisionDigest {
        DecisionDigest(0xcbf2_9ce4_8422_2325) // FNV-1a offset basis
    }
}

impl DecisionDigest {
    fn update(&mut self, decisions: &[gk_filters::FilterDecision]) {
        let mut h = self.0;
        for d in decisions {
            let word = (u64::from(d.estimated_edits) << 2)
                | (u64::from(d.accepted) << 1)
                | u64::from(d.undefined);
            h = (h ^ word).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

struct MeasuredRun {
    run: StreamFilterRun,
    digest: u64,
    wall_seconds: f64,
}

#[allow(clippy::too_many_arguments)]
fn measure(
    profile: &DatasetProfile,
    pairs: usize,
    seed: u64,
    source_batch: usize,
    threshold: u32,
    overlap: bool,
    chunk: usize,
    host_prefetch: bool,
) -> MeasuredRun {
    let mut digest = DecisionDigest::default();
    let wall_start = Instant::now();
    let source = profile.stream_batches(pairs, seed, source_batch);
    let run = streaming_gpu_throughput_with(
        &SETUP1,
        source,
        threshold,
        EncodingActor::Host,
        overlap,
        chunk,
        host_prefetch,
        |_, decisions| digest.update(decisions),
    );
    MeasuredRun {
        run,
        digest: digest.0,
        wall_seconds: wall_start.elapsed().as_secs_f64(),
    }
}

fn print_run(label: &str, measured: &MeasuredRun) {
    let run = &measured.run;
    println!("--- {label} ---");
    println!("pairs filtered          : {}", run.pairs);
    println!("accepted                : {}", run.accepted);
    println!("rejected                : {}", run.rejected());
    println!("undefined pass-through  : {}", run.undefined);
    println!(
        "kernel launches (chunks): {} of {} pairs (resolved pipeline chunk)",
        run.batches, run.pipeline.chunk_pairs
    );
    println!("host prefetch active    : {}", run.pipeline.host_prefetch);
    println!("simulated timeline (three streams: encode+H2D / kernel / D2H):");
    println!(
        "  serialized stages       : {} s",
        fmt(run.pipeline.serialized_seconds, 4)
    );
    println!(
        "  overlapped makespan     : {} s",
        fmt(run.pipeline.overlapped_seconds, 4)
    );
    println!(
        "  overlap saves           : {} s ({}x speedup)",
        fmt(run.pipeline.savings_seconds(), 4),
        fmt(run.pipeline.speedup(), 2)
    );
    println!(
        "  reported filter time    : {} s",
        fmt(run.filter_seconds(), 4)
    );
    println!(
        "  reported kernel time    : {} s",
        fmt(run.kernel_seconds(), 4)
    );
    if run.pipeline.timing_anomalies > 0 {
        println!(
            "  TIMING ANOMALIES        : {} clamped durations (timeline is a lower bound)",
            run.pipeline.timing_anomalies
        );
    }
    println!(
        "throughput (filter time): {} Mpairs/s = {} B/40min",
        fmt(millions_per_second(run.pairs, run.filter_seconds()), 2),
        fmt(billions_in_40_minutes(run.pairs, run.filter_seconds()), 1)
    );
    println!(
        "unified-memory traffic  : {:.1} MiB to device, {:.3} MiB back",
        run.memory_stats.bytes_to_device as f64 / (1024.0 * 1024.0),
        run.memory_stats.bytes_to_host as f64 / (1024.0 * 1024.0)
    );
    println!(
        "measured host wall-clock: {} s (functional simulation; resident set bounded by one source\n                          batch plus the in-flight encoded chunks)",
        fmt(measured.wall_seconds, 1)
    );
    println!();
}

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(if args.full { PAPER_SET_SIZE } else { 1_000_000 });
    let chunk = args.chunk(250_000);
    // `--chunk 0` means auto-size the *pipeline* chunks; the source still needs
    // a real batch size to stay bounded without degenerating to 1-pair batches.
    let source_batch = if chunk == 0 {
        250_000
    } else {
        chunk.clamp(1, 500_000)
    };
    let threshold = 5u32;
    let seed = 0x6B67_5F73;
    let profile = DatasetProfile::set3();

    println!(
        "Streaming GateKeeper-GPU scale run ({} profile)",
        profile.name
    );
    println!(
        "pairs = {pairs}, source batch = {source_batch}, requested chunk = {chunk}, e = {threshold}, overlap = {}, pool threads = {}\n",
        !args.serialized,
        rayon::current_num_threads()
    );

    // --full and --host-serial are single passes (--host-serial must not spawn
    // any pool prefetch work); the default compares both host modes.
    let compare_modes = !args.full && !args.host_serial;
    let primary_prefetch = !args.host_serial;

    if compare_modes {
        // Throwaway warmup so neither measured run pays first-touch costs
        // (worker spawn-up, allocator warm-up) — the comparison would
        // otherwise be biased against whichever mode runs first.
        let _ = measure(
            &profile,
            pairs.min(250_000),
            seed,
            source_batch,
            threshold,
            !args.serialized,
            chunk,
            primary_prefetch,
        );
    }

    let primary = measure(
        &profile,
        pairs,
        seed,
        source_batch,
        threshold,
        !args.serialized,
        chunk,
        primary_prefetch,
    );
    print_run(
        if primary_prefetch {
            "host prefetch ON (encode of chunk i+1 overlaps chunk i's kernel)"
        } else {
            "host prefetch OFF (serial host compute)"
        },
        &primary,
    );

    if compare_modes {
        let secondary = measure(
            &profile,
            pairs,
            seed,
            source_batch,
            threshold,
            !args.serialized,
            chunk,
            !primary_prefetch,
        );
        print_run(
            if primary_prefetch {
                "host prefetch OFF (serial host compute)"
            } else {
                "host prefetch ON (encode of chunk i+1 overlaps chunk i's kernel)"
            },
            &secondary,
        );

        let (on, off) = if primary_prefetch {
            (&primary, &secondary)
        } else {
            (&secondary, &primary)
        };
        assert_eq!(
            on.digest, off.digest,
            "decision streams diverged between host modes — prefetch bug"
        );
        assert_eq!(on.run.accepted, off.run.accepted);
        assert_eq!(on.run.undefined, off.run.undefined);
        println!("=== host prefetch on vs. off ===");
        println!(
            "decisions               : byte-identical (digest {:#018x})",
            on.digest
        );
        println!(
            "measured host wall-clock: {} s (on) vs {} s (off) — {}x",
            fmt(on.wall_seconds, 1),
            fmt(off.wall_seconds, 1),
            fmt(off.wall_seconds / on.wall_seconds.max(1e-9), 2)
        );
        println!(
            "simulated filter time   : identical either way ({} s)",
            fmt(on.run.filter_seconds(), 4)
        );
        println!();
    }

    println!(
        "Expected shape (paper, §3.4): prefetching the next batch on separate streams while the"
    );
    println!("kernel runs hides most of the transfer, so the overlapped filter time beats the serialized");
    println!(
        "sum on every multi-chunk run; the host-side prefetch makes the same trick real on the"
    );
    println!(
        "host, shrinking measured wall-clock on multi-core machines with identical decisions."
    );
}
