//! Whole-genome-scale streaming run: drives a paper-sized pair stream through
//! the triple-buffered GPU batch pipeline without ever materializing the pair
//! set (§3.4 multi-stream prefetch exploited end to end).
//!
//! The default run streams 1 million pairs **twice** — once with the real
//! host-side prefetch (encode of chunk *i+1* on the worker pool while chunk
//! *i*'s kernel closure runs; on pools with ≥ 3 workers the next source batch
//! is also generated ahead on the pool) and once with the serial host path —
//! and reports the measured host wall-clock of both next to the simulated
//! timeline, verifying along the way that the decisions are byte-identical.
//!
//! `--device-encode` switches the comparison axis to the **encoding actor**:
//! one pass on the device-side encoding path (raw 1-byte-per-base uploads,
//! fused encode+filter kernel, zero host encode time) and one on the host
//! path, same seeded stream, asserting digest-identical decisions and a
//! strictly lower host-side encode share for the device pass. This mode also
//! emits a Markdown comparison table between `<!-- encode-modes:begin/end -->`
//! markers so CI can lift it straight into the job summary.
//!
//! `--full` uses the paper's 30 million pairs in a single pass;
//! `--host-serial` forces a single pass on the serial host path (no pool
//! prefetch work is spawned at all). Memory stays bounded by the source batch
//! size plus the bounded number of encoded chunks in flight regardless of
//! `--pairs`.
//!
//! Usage: `cargo run --release -p gk-bench --bin streaming_scale
//!         [--pairs N] [--full] [--chunk N] [--serialized] [--host-serial]
//!         [--device-encode] [--help]`

use gk_bench::datasets::PAPER_SET_SIZE;
use gk_bench::runner::streaming_gpu_throughput_with;
use gk_bench::table::fmt;
use gk_bench::{HarnessArgs, SETUP1};
use gk_core::config::EncodingActor;
use gk_core::pipeline::StreamFilterRun;
use gk_core::timing::{billions_in_40_minutes, millions_per_second};
use gk_seq::datasets::DatasetProfile;
use std::time::Instant;

/// Order-sensitive FNV-1a-style digest of a decision stream, so two runs can
/// be compared byte-for-byte without materializing 30M decisions.
#[derive(Clone, Copy)]
struct DecisionDigest(u64);

impl Default for DecisionDigest {
    fn default() -> DecisionDigest {
        DecisionDigest(0xcbf2_9ce4_8422_2325) // FNV-1a offset basis
    }
}

impl DecisionDigest {
    fn update(&mut self, decisions: &[gk_filters::FilterDecision]) {
        let mut h = self.0;
        for d in decisions {
            let word = (u64::from(d.estimated_edits) << 2)
                | (u64::from(d.accepted) << 1)
                | u64::from(d.undefined);
            h = (h ^ word).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

struct MeasuredRun {
    run: StreamFilterRun,
    digest: u64,
    wall_seconds: f64,
}

struct RunSpec {
    pairs: usize,
    seed: u64,
    source_batch: usize,
    threshold: u32,
    overlap: bool,
    chunk: usize,
    host_prefetch: bool,
    encoding: EncodingActor,
}

fn measure(profile: &DatasetProfile, spec: &RunSpec) -> MeasuredRun {
    let mut digest = DecisionDigest::default();
    let wall_start = Instant::now();
    let source = profile.stream_batches(spec.pairs, spec.seed, spec.source_batch);
    let run = streaming_gpu_throughput_with(
        &SETUP1,
        source,
        spec.threshold,
        spec.encoding,
        spec.overlap,
        spec.chunk,
        spec.host_prefetch,
        |_, decisions| digest.update(decisions),
    );
    MeasuredRun {
        run,
        digest: digest.0,
        wall_seconds: wall_start.elapsed().as_secs_f64(),
    }
}

fn print_run(label: &str, measured: &MeasuredRun) {
    let run = &measured.run;
    println!("--- {label} ---");
    println!("pairs filtered          : {}", run.pairs);
    println!("accepted                : {}", run.accepted);
    println!("rejected                : {}", run.rejected());
    println!("undefined pass-through  : {}", run.undefined);
    println!(
        "kernel launches (chunks): {} of {} pairs (resolved pipeline chunk)",
        run.batches, run.pipeline.chunk_pairs
    );
    println!("host prefetch active    : {}", run.pipeline.host_prefetch);
    println!(
        "encoding actor          : {}",
        if run.pipeline.device_encode {
            "device (raw upload + fused encode+filter kernel)"
        } else {
            "host (encode_pair_batch before the transfer)"
        }
    );
    println!(
        "host encode time        : {} s ({} of serialized filter time)",
        fmt(run.timing.encode_seconds, 4),
        fmt_percent(run.timing.host_encode_share())
    );
    println!(
        "in-kernel encode share  : {} s (inside the kernel time)",
        fmt(run.timing.encode_device_seconds, 4)
    );
    println!("simulated timeline (three streams: encode+H2D / kernel / D2H):");
    println!(
        "  serialized stages       : {} s",
        fmt(run.pipeline.serialized_seconds, 4)
    );
    println!(
        "  overlapped makespan     : {} s",
        fmt(run.pipeline.overlapped_seconds, 4)
    );
    println!(
        "  overlap saves           : {} s ({}x speedup)",
        fmt(run.pipeline.savings_seconds(), 4),
        fmt(run.pipeline.speedup(), 2)
    );
    println!(
        "  reported filter time    : {} s",
        fmt(run.filter_seconds(), 4)
    );
    println!(
        "  reported kernel time    : {} s",
        fmt(run.kernel_seconds(), 4)
    );
    // Anomalies are a hard failure, not a footnote: a clamped duration means
    // the numbers just printed are lower bounds masquerading as measurements.
    gk_bench::runner::assert_no_timing_anomalies("streaming smoke", &run.pipeline);
    println!(
        "throughput (filter time): {} Mpairs/s = {} B/40min",
        fmt(millions_per_second(run.pairs, run.filter_seconds()), 2),
        fmt(billions_in_40_minutes(run.pairs, run.filter_seconds()), 1)
    );
    println!(
        "unified-memory traffic  : {:.1} MiB to device, {:.3} MiB back",
        run.memory_stats.bytes_to_device as f64 / (1024.0 * 1024.0),
        run.memory_stats.bytes_to_host as f64 / (1024.0 * 1024.0)
    );
    println!(
        "measured host wall-clock: {} s (functional simulation; resident set bounded by one source\n                          batch plus the in-flight prepped chunks)",
        fmt(measured.wall_seconds, 1)
    );
    println!();
}

fn fmt_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// One Markdown table row of the encode-mode comparison.
fn summary_row(mode: &str, measured: &MeasuredRun) -> String {
    let run = &measured.run;
    format!(
        "| {mode} | `{:#018x}` | {} | {} | {} | {} | {} | {:.1} | {} |",
        measured.digest,
        fmt(run.timing.encode_seconds, 4),
        fmt(run.timing.encode_device_seconds, 4),
        fmt_percent(run.timing.host_encode_share()),
        fmt(run.filter_seconds(), 4),
        fmt(run.kernel_seconds(), 4),
        run.memory_stats.bytes_to_device as f64 / (1024.0 * 1024.0),
        fmt(measured.wall_seconds, 1)
    )
}

fn compare_encode_modes(device: &MeasuredRun, host: &MeasuredRun, pairs: usize, threshold: u32) {
    assert_eq!(
        device.digest, host.digest,
        "decision streams diverged between encode modes — device-encode bug"
    );
    assert_eq!(device.run.accepted, host.run.accepted);
    assert_eq!(device.run.undefined, host.run.undefined);
    assert!(
        device.run.timing.host_encode_share() < host.run.timing.host_encode_share(),
        "device encode must have a strictly lower host-side encode share"
    );
    assert_eq!(device.run.timing.encode_seconds, 0.0);
    assert!(device.run.timing.encode_device_seconds > 0.0);

    println!("=== device encode vs. host encode ===");
    println!(
        "decisions               : byte-identical (digest {:#018x})",
        device.digest
    );
    println!(
        "host encode time        : {} s (device path) vs {} s (host path)",
        fmt(device.run.timing.encode_seconds, 4),
        fmt(host.run.timing.encode_seconds, 4)
    );
    println!(
        "simulated filter time   : {} s (device) vs {} s (host)",
        fmt(device.run.filter_seconds(), 4),
        fmt(host.run.filter_seconds(), 4)
    );
    println!();

    // Markdown block for the CI job summary (lifted verbatim by the workflow).
    println!("<!-- encode-modes:begin -->");
    println!("### `streaming_scale` encode-mode comparison ({pairs} pairs, e = {threshold})");
    println!();
    println!("| mode | decisions digest | host encode s | in-kernel encode s | host encode share | filter s | kernel s | H2D MiB | wall s |");
    println!("|---|---|---|---|---|---|---|---|---|");
    println!("{}", summary_row("device", device));
    println!("{}", summary_row("host", host));
    println!();
    println!(
        "Decisions byte-identical across encode modes: **yes** (digest `{:#018x}`).",
        device.digest
    );
    println!("<!-- encode-modes:end -->");
    println!();
}

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(if args.full { PAPER_SET_SIZE } else { 1_000_000 });
    let chunk = args.chunk(250_000);
    // `--chunk 0` means auto-size the *pipeline* chunks; the source still needs
    // a real batch size to stay bounded without degenerating to 1-pair batches.
    let source_batch = if chunk == 0 {
        250_000
    } else {
        chunk.clamp(1, 500_000)
    };
    let threshold = 5u32;
    let seed = 0x6B67_5F73;
    let profile = DatasetProfile::set3();

    let primary_encoding = if args.device_encode {
        EncodingActor::Device
    } else {
        EncodingActor::Host
    };
    println!(
        "Streaming GateKeeper-GPU scale run ({} profile)",
        profile.name
    );
    println!(
        "pairs = {pairs}, source batch = {source_batch}, requested chunk = {chunk}, e = {threshold}, overlap = {}, encoding = {primary_encoding:?}, pool threads = {}\n",
        !args.serialized,
        rayon::current_num_threads()
    );

    // --full and --host-serial are single passes (--host-serial must not spawn
    // any pool prefetch work); otherwise the run compares two modes over the
    // same seeded stream: encode device-vs-host with --device-encode, host
    // prefetch on-vs-off without it.
    let compare_modes = !args.full && !args.host_serial;
    let primary_prefetch = !args.host_serial;
    let spec = |encoding: EncodingActor, host_prefetch: bool, pairs: usize| RunSpec {
        pairs,
        seed,
        source_batch,
        threshold,
        overlap: !args.serialized,
        chunk,
        host_prefetch,
        encoding,
    };

    if compare_modes {
        // Throwaway warmup so neither measured run pays first-touch costs
        // (worker spawn-up, allocator warm-up) — the comparison would
        // otherwise be biased against whichever mode runs first.
        let _ = measure(
            &profile,
            &spec(primary_encoding, primary_prefetch, pairs.min(250_000)),
        );
    }

    let primary = measure(&profile, &spec(primary_encoding, primary_prefetch, pairs));
    print_run(
        match (args.device_encode, primary_prefetch) {
            (true, _) => "device encode (raw upload, fused encode+filter kernel)",
            (false, true) => "host prefetch ON (encode of chunk i+1 overlaps chunk i's kernel)",
            (false, false) => "host prefetch OFF (serial host compute)",
        },
        &primary,
    );

    if compare_modes && args.device_encode {
        let host = measure(
            &profile,
            &spec(EncodingActor::Host, primary_prefetch, pairs),
        );
        print_run("host encode (encode_pair_batch before the transfer)", &host);
        compare_encode_modes(&primary, &host, pairs, threshold);
    } else if compare_modes {
        let secondary = measure(&profile, &spec(primary_encoding, !primary_prefetch, pairs));
        print_run(
            if primary_prefetch {
                "host prefetch OFF (serial host compute)"
            } else {
                "host prefetch ON (encode of chunk i+1 overlaps chunk i's kernel)"
            },
            &secondary,
        );

        let (on, off) = if primary_prefetch {
            (&primary, &secondary)
        } else {
            (&secondary, &primary)
        };
        assert_eq!(
            on.digest, off.digest,
            "decision streams diverged between host modes — prefetch bug"
        );
        assert_eq!(on.run.accepted, off.run.accepted);
        assert_eq!(on.run.undefined, off.run.undefined);
        println!("=== host prefetch on vs. off ===");
        println!(
            "decisions               : byte-identical (digest {:#018x})",
            on.digest
        );
        println!(
            "measured host wall-clock: {} s (on) vs {} s (off) — {}x",
            fmt(on.wall_seconds, 1),
            fmt(off.wall_seconds, 1),
            fmt(off.wall_seconds / on.wall_seconds.max(1e-9), 2)
        );
        println!(
            "simulated filter time   : identical either way ({} s)",
            fmt(on.run.filter_seconds(), 4)
        );
        println!();
    }

    if args.device_encode {
        println!("Expected shape (paper, §3.3/Figure 6): device encoding ships ~4x the bytes but removes");
        println!("the host encode stage entirely, so filter time drops while kernel time absorbs a small");
        println!("in-kernel packing share; decisions are byte-identical in both modes.");
    } else {
        println!("Expected shape (paper, §3.4): prefetching the next batch on separate streams while the");
        println!("kernel runs hides most of the transfer, so the overlapped filter time beats the serialized");
        println!(
            "sum on every multi-chunk run; the host-side prefetch makes the same trick real on the"
        );
        println!(
            "host, shrinking measured wall-clock on multi-core machines with identical decisions."
        );
    }
}
