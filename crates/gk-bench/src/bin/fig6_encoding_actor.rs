//! Figure 6 (and Sup. Tables S.17–S.19, Figures S.13/S.14) — effect of the encoding
//! actor (host vs device) on single-GPU filtering throughput as the error threshold
//! grows, by kernel time and by filter time.
//!
//! Both columns run their real execution path: the device rows upload raw
//! reads and pack inside the fused encode+filter kernel, the host rows run
//! `encode_pair_batch` before the (4× smaller) transfer.
//!
//! Usage: `cargo run --release -p gk-bench --bin fig6_encoding_actor [--pairs N] [--full]`

use gk_bench::datasets::throughput_set;
use gk_bench::runner::gpu_throughput;
use gk_bench::table::{fmt, Table};
use gk_bench::{HarnessArgs, SETUP1, SETUP2};
use gk_core::config::EncodingActor;

fn main() {
    let args = HarnessArgs::parse();
    let pairs = args.pairs(40_000);

    println!("Figure 6 / Tables S.17-S.19: effect of the encoding actor on single-GPU throughput");
    println!("(millions of filtrations per second, {pairs} pairs per point)\n");

    let read_lengths: Vec<usize> = if args.full {
        vec![100, 150, 250]
    } else {
        vec![100]
    };

    for read_len in read_lengths {
        let set = throughput_set(read_len, pairs);
        let thresholds: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 6];
        for setup in [SETUP1, SETUP2] {
            let mut table = Table::new(vec![
                "e",
                "Device-enc kernel",
                "Device-enc filter",
                "Host-enc kernel",
                "Host-enc filter",
            ])
            .with_title(format!("{read_len}bp — {}", setup.name));
            for &e in &thresholds {
                let device = gpu_throughput(&setup, 1, &set, e, EncodingActor::Device);
                let host = gpu_throughput(&setup, 1, &set, e, EncodingActor::Host);
                table.row(vec![
                    e.to_string(),
                    fmt(device.kernel_mps, 1),
                    fmt(device.filter_mps, 1),
                    fmt(host.kernel_mps, 1),
                    fmt(host.filter_mps, 1),
                ]);
            }
            table.print();
        }
    }

    println!("Expected shape (paper): host encoding always wins on kernel-time throughput (the gap is largest");
    println!("at small e), device encoding wins on filter-time throughput, and the filter-time curves are flat in e.");
}
