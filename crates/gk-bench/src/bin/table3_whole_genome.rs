//! Table 3 (and Sup. Tables S.24–S.26) — whole-genome mapping information with and
//! without GateKeeper-GPU pre-alignment filtering: number of mappings, mapped
//! reads, candidate mappings entering verification, and rejected pairs (reduction).
//!
//! Usage: `cargo run --release -p gk-bench --bin table3_whole_genome [--reads N]
//! [--genome N] [--extra-sets]`
//! (`--extra-sets` adds the additional read-length rows in the style of Table S.26.)

use gk_bench::datasets::{whole_genome_reads, whole_genome_reference};
use gk_bench::table::{fmt_count, Table};
use gk_bench::HarnessArgs;
use gk_core::config::FilterConfig;
use gk_core::gpu::GateKeeperGpu;
use gk_mapper::pipeline::{MapperConfig, MappingStats, PreFilter, ReadMapper};
use gk_seq::simulate::ErrorProfile;

fn row(table: &mut Table, label: &str, e: u32, stats: &MappingStats) {
    let reduction = if stats.rejected_pairs > 0 {
        format!(
            "{} ({:.0}%)",
            fmt_count(stats.rejected_pairs),
            stats.reduction_fraction() * 100.0
        )
    } else {
        "NA".to_string()
    };
    table.row(vec![
        label.to_string(),
        e.to_string(),
        fmt_count(stats.mappings),
        fmt_count(stats.mapped_reads),
        fmt_count(stats.verification_pairs),
        reduction,
    ]);
}

fn run_experiment(table: &mut Table, read_len: usize, reads: usize, genome: usize, e: u32) {
    let reference = whole_genome_reference(genome);
    let read_set = whole_genome_reads(&reference, read_len, reads, ErrorProfile::illumina());
    let mapper = ReadMapper::new(reference, MapperConfig::new(e));

    let unfiltered = mapper.map_reads(&read_set, &PreFilter::None);
    row(
        table,
        &format!("{read_len}bp  No Filter"),
        e,
        &unfiltered.stats,
    );

    let gpu = GateKeeperGpu::with_default_device(FilterConfig::new(read_len, e));
    let filtered = mapper.map_reads(&read_set, &PreFilter::Gpu(gpu));
    row(
        table,
        &format!("{read_len}bp  GateKeeper-GPU"),
        e,
        &filtered.stats,
    );
}

fn main() {
    let args = HarnessArgs::parse();
    let genome = args.genome(400_000);
    let reads = args.reads(4_000);

    println!("Table 3: whole-genome mapping information with pre-alignment filtering");
    println!("(synthetic chromosome of {genome} bp, {reads} reads per set)\n");

    let mut table = Table::new(vec![
        "mrFAST w/",
        "-e",
        "Mappings",
        "Mapped Reads",
        "Verification Pairs",
        "Rejected Pairs (Reduction)",
    ]);

    // The paper's Table 3 runs the 100bp real set at e = 0 and e = 5.
    for e in [0u32, 5] {
        run_experiment(&mut table, 100, reads, genome, e);
    }

    if args.extra_sets {
        // Table S.24/S.25/S.26-style rows: 300bp (rich deletions), 150bp, 50bp, 250bp.
        run_experiment(&mut table, 300, reads / 4, genome, 15);
        run_experiment(&mut table, 150, reads / 2, genome, 8);
        run_experiment(&mut table, 50, reads, genome, 1);
        run_experiment(&mut table, 250, reads / 2, genome, 0);
    }

    table.print();
    println!("Expected shape (paper): mappings and mapped reads are identical with and without the filter,");
    println!("while the filter rejects ~81-97% of the candidate mappings before verification.");
}
