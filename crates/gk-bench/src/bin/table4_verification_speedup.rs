//! Table 4 — theoretical versus achieved speedup of the verification (DP) stage
//! when GateKeeper-GPU removes candidate mappings.
//!
//! The theoretical speedup assumes verification time is directly proportional to
//! the number of pairs entering it (a 90% reduction would give 10×); the achieved
//! speedup is what the measured verification time actually shows, which is lower
//! because the surviving pairs are the expensive near-threshold ones and because
//! filtering itself takes time.
//!
//! Usage: `cargo run --release -p gk-bench --bin table4_verification_speedup [--reads N] [--genome N]`

use gk_bench::datasets::{whole_genome_reads, whole_genome_reference};
use gk_bench::runner::speedup;
use gk_bench::table::{fmt, Table};
use gk_bench::{HarnessArgs, SETUP1, SETUP2};
use gk_core::config::{EncodingActor, FilterConfig};
use gk_core::gpu::GateKeeperGpu;
use gk_mapper::pipeline::{MapperConfig, PreFilter, ReadMapper};
use gk_seq::simulate::ErrorProfile;

fn main() {
    let args = HarnessArgs::parse();
    let genome = args.genome(400_000);
    let reads = args.reads(4_000);
    let e = 5u32;

    println!("Table 4: theoretical vs achieved speedup in verification (100bp, e = {e})");
    println!("(synthetic chromosome of {genome} bp, {reads} reads)\n");

    let reference = whole_genome_reference(genome);
    let read_set = whole_genome_reads(&reference, 100, reads, ErrorProfile::illumina());
    let mapper = ReadMapper::new(reference, MapperConfig::new(e));

    let unfiltered = mapper.map_reads(&read_set, &PreFilter::None);
    let dp_baseline = unfiltered.stats.verification_seconds;

    let mut table = Table::new(vec![
        "mrFAST w/",
        "Setup",
        "Reduction",
        "Theoretical DP speedup",
        "Achieved DP time (s)",
        "Achieved DP speedup",
    ]);
    table.row(vec![
        "No Filter".into(),
        "-".into(),
        "NA".into(),
        "NA".into(),
        fmt(dp_baseline, 3),
        "NA".into(),
    ]);

    for setup in [SETUP1, SETUP2] {
        for encoding in [EncodingActor::Device, EncodingActor::Host] {
            let gpu = GateKeeperGpu::new(
                setup.device(),
                FilterConfig::new(100, e).with_encoding(encoding),
            );
            let filtered = mapper.map_reads(&read_set, &PreFilter::Gpu(gpu));
            let stats = filtered.stats;
            let survived = stats.verification_pairs as f64 / stats.candidate_pairs.max(1) as f64;
            let theoretical = if survived > 0.0 { 1.0 / survived } else { 0.0 };
            let achieved = speedup(dp_baseline, stats.verification_seconds);
            let label = match encoding {
                EncodingActor::Device => "GateKeeper-GPU (d)",
                EncodingActor::Host => "GateKeeper-GPU (h)",
            };
            table.row(vec![
                label.into(),
                setup.name.into(),
                format!("{:.0}%", stats.reduction_fraction() * 100.0),
                format!("{theoretical:.1}x"),
                fmt(stats.verification_seconds, 3),
                format!("{achieved:.1}x"),
            ]);
        }
    }

    table.print();
    println!("Expected shape (paper): ~90% reduction gives a ~10.6x theoretical speedup but a 3.6-3.8x achieved");
    println!(
        "speedup, because the pairs that survive filtering are the expensive near-threshold ones."
    );
}
