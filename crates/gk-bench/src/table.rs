//! Plain-text table rendering for the harness binaries.

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Table {
        Table {
            headers: headers.into_iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Table {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Missing cells render empty; extra cells are dropped.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(columns).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(|s| s.as_str()).unwrap_or("");
                line.push_str(&format!("{cell:<width$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total_width: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total_width.max(4)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a speedup factor like the paper (`2.9×`), or `-` when there is none.
pub fn fmt_speedup(factor: f64) -> String {
    if factor <= 1.0 {
        "-".to_string()
    } else {
        format!("{factor:.1}x")
    }
}

/// Formats a large count with thousands separators.
pub fn fmt_count(value: u64) -> String {
    let digits: Vec<char> = value.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, ch) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*ch);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]).with_title("Demo");
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let rendered = t.render();
        assert!(rendered.starts_with("Demo\n"));
        assert!(rendered.contains("alpha"));
        assert!(rendered.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let rendered = t.render();
        assert!(rendered.contains('1'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_speedup(2.91), "2.9x");
        assert_eq!(fmt_speedup(0.8), "-");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(42), "42");
    }
}
