//! Minimal command-line argument handling for the harness binaries.
//!
//! Every binary accepts the same small set of flags so the experiments can be
//! scaled up towards the paper's full 30-million-pair / whole-genome sizes when
//! more time is available:
//!
//! * `--pairs N` — number of pairs per dataset (default varies per experiment);
//! * `--reads N` — number of reads for mapper experiments;
//! * `--genome N` — synthetic reference length for mapper experiments;
//! * `--chunk N` — pipeline chunk size in pairs (0 = auto);
//! * `--serialized` — disable stream overlap (three stages run back to back);
//! * `--host-serial` — disable the host-side prefetch (serial host compute);
//! * `--device-encode` — use the device-side encoding execution path (raw
//!   1-byte-per-base uploads + fused encode+filter kernel) instead of host
//!   `encode_pair_batch`;
//! * `--scalar` — force the per-bit scalar reference kernels on the CPU rows
//!   (same effect as `GK_SIMD=scalar`, but per invocation);
//! * `--topology KIND` — interconnect wiring for multi-GPU runs
//!   (`private`, `shared`, `switch[:N]`, `nvlink`);
//! * `--aware` — turn on the topology-aware multi-GPU scheduler;
//! * `--full` — run the complete sweep instead of the representative subset;
//! * `--mapper-profiles` / `--extra-sets` — experiment-specific extensions;
//! * `--help` / `-h` — print the flag reference and exit.

use gk_gpusim::topology::TopologyKind;

/// Parsed harness arguments.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    pairs: Option<usize>,
    reads: Option<usize>,
    genome: Option<usize>,
    chunk: Option<usize>,
    topology: Option<TopologyKind>,
    /// Turn the topology-aware multi-GPU scheduler on (weighted shares,
    /// per-device encoding actor, contention-sized chunks).
    pub aware: bool,
    /// Run the full sweep rather than the representative subset.
    pub full: bool,
    /// Disable stream overlap in the GPU batch pipeline.
    pub serialized: bool,
    /// Disable the host-side prefetch (encode of chunk i+1 on the worker pool
    /// while chunk i's kernel closure runs); the host computes chunks serially.
    pub host_serial: bool,
    /// Use the device-side encoding execution path: upload raw reads and let
    /// the fused kernel do the 2-bit packing (no host `encode_pair_batch`).
    pub device_encode: bool,
    /// Force the per-bit scalar reference kernels instead of the lane-parallel
    /// SIMD path (the throughput baseline; decisions are byte-identical).
    pub scalar: bool,
    /// Include the Minimap2/BWA-MEM candidate profiles (Figure S.5/S.6).
    pub mapper_profiles: bool,
    /// Include the additional real-set rows of Table S.26.
    pub extra_sets: bool,
}

impl HarnessArgs {
    /// Parses from the process arguments. `--help` / `-h` prints the shared
    /// flag reference and exits.
    pub fn parse() -> HarnessArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", HarnessArgs::usage());
            std::process::exit(0);
        }
        HarnessArgs::parse_from(args)
    }

    /// The shared flag reference printed by `--help`.
    pub fn usage() -> &'static str {
        "Shared harness flags (every gk-bench binary):\n\
         \n\
         \x20 --pairs N          number of pairs per dataset (default varies per experiment)\n\
         \x20 --reads N          number of reads for mapper experiments\n\
         \x20 --genome N         synthetic reference length for mapper experiments\n\
         \x20 --chunk N          pipeline chunk size in pairs (0 = auto-size)\n\
         \x20 --serialized       disable stream overlap (stages run back to back)\n\
         \x20 --host-serial      disable the host-side prefetch (serial host compute)\n\
         \x20 --device-encode    device-side encoding path: upload raw reads, 2-bit pack\n\
         \x20                    inside the fused encode+filter kernel (~4x H2D bytes,\n\
         \x20                    zero host encode time); default is host encoding\n\
         \x20 --scalar           force the per-bit scalar reference kernels on the CPU\n\
         \x20                    rows (same as GK_SIMD=scalar; decisions are identical)\n\
         \x20 --topology KIND    interconnect wiring for multi-GPU runs:\n\
         \x20                    private (default), shared, switch[:N], nvlink\n\
         \x20 --aware            topology-aware multi-GPU scheduler (weighted shares,\n\
         \x20                    per-device encoding actor, contention-sized chunks)\n\
         \x20 --full             run the complete sweep / paper-sized input\n\
         \x20 --mapper-profiles  include the Minimap2/BWA-MEM candidate profiles\n\
         \x20 --extra-sets       include the additional real-set rows\n\
         \x20 --help, -h         print this reference and exit\n\
         \n\
         streaming_scale example (1M-pair smoke, both encode paths):\n\
         \x20 cargo run --release -p gk-bench --bin streaming_scale -- \\\n\
         \x20     --pairs 1000000 --device-encode"
    }

    /// Parses from an explicit argument list (used in tests).
    pub fn parse_from(args: Vec<String>) -> HarnessArgs {
        let mut parsed = HarnessArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--pairs" => parsed.pairs = iter.next().and_then(|v| v.parse().ok()),
                "--reads" => parsed.reads = iter.next().and_then(|v| v.parse().ok()),
                "--genome" => parsed.genome = iter.next().and_then(|v| v.parse().ok()),
                "--chunk" => parsed.chunk = iter.next().and_then(|v| v.parse().ok()),
                "--topology" => match iter.next().map(|v| v.parse::<TopologyKind>()) {
                    Some(Ok(kind)) => parsed.topology = Some(kind),
                    Some(Err(err)) => eprintln!("warning: {err}"),
                    None => eprintln!("warning: --topology needs a value"),
                },
                "--aware" => parsed.aware = true,
                "--serialized" => parsed.serialized = true,
                "--host-serial" => parsed.host_serial = true,
                "--device-encode" => parsed.device_encode = true,
                "--scalar" => parsed.scalar = true,
                "--full" => parsed.full = true,
                "--mapper-profiles" => parsed.mapper_profiles = true,
                "--extra-sets" => parsed.extra_sets = true,
                other => eprintln!("warning: ignoring unknown argument `{other}`"),
            }
        }
        parsed
    }

    /// Number of pairs to generate, defaulting to `default`.
    pub fn pairs(&self, default: usize) -> usize {
        self.pairs.unwrap_or(default).max(1)
    }

    /// Number of reads to simulate, defaulting to `default`.
    pub fn reads(&self, default: usize) -> usize {
        self.reads.unwrap_or(default).max(1)
    }

    /// Synthetic genome length, defaulting to `default`.
    pub fn genome(&self, default: usize) -> usize {
        self.genome.unwrap_or(default).max(10_000)
    }

    /// Pipeline chunk size in pairs, defaulting to `default` (0 = auto-size).
    pub fn chunk(&self, default: usize) -> usize {
        self.chunk.unwrap_or(default)
    }

    /// The interconnect topology for multi-GPU runs, defaulting to private
    /// links (the paper's implicit assumption).
    pub fn topology(&self) -> TopologyKind {
        self.topology.unwrap_or_default()
    }

    /// SIMD mode for the CPU harness rows: the per-bit scalar reference with
    /// `--scalar`, otherwise `Auto` (which consults the `GK_SIMD` environment
    /// variable and defaults to the lane path).
    pub fn simd_mode(&self) -> gk_filters::SimdMode {
        if self.scalar {
            gk_filters::SimdMode::Scalar
        } else {
            gk_filters::SimdMode::Auto
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_arguments_are_ignored() {
        let args = HarnessArgs::parse_from(vec!["--bogus".into(), "--reads".into(), "7".into()]);
        assert_eq!(args.reads(1), 7);
    }

    #[test]
    fn malformed_numbers_fall_back_to_defaults() {
        let args = HarnessArgs::parse_from(vec!["--pairs".into(), "abc".into()]);
        assert_eq!(args.pairs(99), 99);
    }

    #[test]
    fn genome_has_a_floor() {
        let args = HarnessArgs::parse_from(vec!["--genome".into(), "5".into()]);
        assert_eq!(args.genome(1_000_000), 10_000);
    }

    #[test]
    fn flags_are_detected() {
        let args = HarnessArgs::parse_from(vec![
            "--mapper-profiles".into(),
            "--extra-sets".into(),
            "--full".into(),
            "--serialized".into(),
            "--host-serial".into(),
            "--device-encode".into(),
            "--scalar".into(),
        ]);
        assert!(args.mapper_profiles && args.extra_sets && args.full && args.serialized);
        assert!(args.host_serial);
        assert!(args.device_encode);
        assert!(args.scalar);
        assert!(!HarnessArgs::parse_from(vec![]).host_serial);
        assert!(!HarnessArgs::parse_from(vec![]).device_encode);
        assert!(!HarnessArgs::parse_from(vec![]).scalar);
    }

    #[test]
    fn scalar_flag_selects_the_simd_mode() {
        use gk_filters::SimdMode;
        let scalar = HarnessArgs::parse_from(vec!["--scalar".into()]);
        assert_eq!(scalar.simd_mode(), SimdMode::Scalar);
        assert_eq!(HarnessArgs::parse_from(vec![]).simd_mode(), SimdMode::Auto);
    }

    #[test]
    fn usage_mentions_every_flag() {
        let usage = HarnessArgs::usage();
        for flag in [
            "--pairs",
            "--reads",
            "--genome",
            "--chunk",
            "--serialized",
            "--host-serial",
            "--device-encode",
            "--scalar",
            "--topology",
            "--aware",
            "--full",
            "--mapper-profiles",
            "--extra-sets",
            "--help",
        ] {
            assert!(usage.contains(flag), "usage is missing {flag}");
        }
    }

    #[test]
    fn topology_flag_parses_every_spelling() {
        let shared = HarnessArgs::parse_from(vec!["--topology".into(), "shared".into()]);
        assert_eq!(shared.topology(), TopologyKind::SharedRoot);
        let switch = HarnessArgs::parse_from(vec!["--topology".into(), "switch:2".into()]);
        assert_eq!(switch.topology(), TopologyKind::Switch { fanout: 2 });
        // Default and malformed values fall back to private links.
        assert_eq!(
            HarnessArgs::parse_from(vec![]).topology(),
            TopologyKind::Independent
        );
        let bad = HarnessArgs::parse_from(vec!["--topology".into(), "bogus".into()]);
        assert_eq!(bad.topology(), TopologyKind::Independent);
        assert!(!bad.aware);
        let aware = HarnessArgs::parse_from(vec!["--aware".into()]);
        assert!(aware.aware);
    }

    #[test]
    fn chunk_parses_with_auto_default() {
        let args = HarnessArgs::parse_from(vec!["--chunk".into(), "250000".into()]);
        assert_eq!(args.chunk(0), 250_000);
        assert_eq!(HarnessArgs::parse_from(vec![]).chunk(0), 0);
    }
}
