//! # gk-bench
//!
//! Experiment harness for regenerating every table and figure of the GateKeeper-GPU
//! paper. Each binary in `src/bin/` reproduces one table/figure (see DESIGN.md for
//! the full index); this library holds the shared pieces:
//!
//! * [`table`] — plain-text table rendering in the style of the paper's tables;
//! * [`args`] — a tiny command-line parser for the harness binaries (`--pairs N`,
//!   `--reads N`, `--full`, …);
//! * [`setups`] — the two experimental setups of §4.2 (Setup 1: GTX 1080 Ti,
//!   Setup 2: Tesla K20X) and their device counts;
//! * [`datasets`] — scaled-down instantiations of the paper's pair sets. The paper
//!   uses 30 million pairs per set; the harness defaults to a few hundred thousand
//!   and reports throughput in the same units, since rates (pairs per second) are
//!   what the tables compare.
//! * [`runner`] — shared experiment runners (throughput rows, accuracy rows,
//!   speedup calculations) used by several binaries.

#![warn(missing_docs)]

pub mod args;
pub mod datasets;
pub mod runner;
pub mod setups;
pub mod table;

pub use args::HarnessArgs;
pub use setups::{Setup, SETUP1, SETUP2};
pub use table::Table;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_expose_the_papers_devices() {
        assert_eq!(SETUP1.device().name, "GeForce GTX 1080 Ti");
        assert_eq!(SETUP2.device().name, "Tesla K20X");
        assert_eq!(SETUP1.max_devices, 8);
        assert_eq!(SETUP2.max_devices, 4);
    }

    #[test]
    fn table_renders_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let rendered = t.render();
        assert!(rendered.contains('a') && rendered.contains('2'));
    }

    #[test]
    fn args_parse_defaults_and_overrides() {
        let args = HarnessArgs::parse_from(vec!["--pairs".into(), "1234".into(), "--full".into()]);
        assert_eq!(args.pairs(5), 1234);
        assert!(args.full);
        let defaults = HarnessArgs::parse_from(vec![]);
        assert_eq!(defaults.pairs(5), 5);
        assert!(!defaults.full);
    }
}
