//! Shared experiment runners used by several harness binaries.

use crate::setups::Setup;
use gk_core::config::{EncodingActor, FilterConfig};
use gk_core::cpu::GateKeeperCpu;
use gk_core::gpu::GateKeeperGpu;
use gk_core::multi_gpu::{MultiGpuGateKeeper, MultiGpuRun};
use gk_core::pipeline::StreamFilterRun;
use gk_core::timing::billions_in_40_minutes;
use gk_filters::SimdMode;
use gk_gpusim::topology::TopologyKind;
use gk_seq::pairs::PairSet;
use gk_seq::stream::PairBatches;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Shared worker pools, one per thread count, built lazily and reused for the
/// lifetime of the harness process. Every binary that sweeps thresholds,
/// datasets or setups used to rebuild a `GateKeeperCpu` — and with it a fresh
/// thread pool — per measurement; routing through this cache means the workers
/// are spawned once per thread count and every iteration reuses them.
fn pool_cache() -> &'static Mutex<HashMap<usize, Arc<rayon::ThreadPool>>> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    POOLS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the process-wide shared pool for `threads` workers, building it on
/// first use.
pub fn shared_pool(threads: usize) -> Arc<rayon::ThreadPool> {
    let threads = threads.max(1);
    let mut pools = pool_cache().lock().expect("pool cache poisoned");
    Arc::clone(pools.entry(threads).or_insert_with(|| {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("failed to build shared harness thread pool"),
        )
    }))
}

/// One throughput measurement (a cell family of Table 2 / S.13–S.15).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Kernel time in seconds for the whole set.
    pub kernel_seconds: f64,
    /// Filter time in seconds for the whole set.
    pub filter_seconds: f64,
    /// Kernel-time throughput in billions of filtrations per 40 minutes.
    pub kernel_b40: f64,
    /// Filter-time throughput in billions of filtrations per 40 minutes.
    pub filter_b40: f64,
    /// Kernel-time throughput in millions of filtrations per second.
    pub kernel_mps: f64,
    /// Filter-time throughput in millions of filtrations per second.
    pub filter_mps: f64,
}

impl ThroughputPoint {
    /// Builds a point from measured times over `pairs` filtrations.
    pub fn new(pairs: usize, kernel_seconds: f64, filter_seconds: f64) -> ThroughputPoint {
        ThroughputPoint {
            kernel_seconds,
            filter_seconds,
            kernel_b40: billions_in_40_minutes(pairs, kernel_seconds),
            filter_b40: billions_in_40_minutes(pairs, filter_seconds),
            kernel_mps: if kernel_seconds > 0.0 {
                pairs as f64 / kernel_seconds / 1e6
            } else {
                0.0
            },
            filter_mps: if filter_seconds > 0.0 {
                pairs as f64 / filter_seconds / 1e6
            } else {
                0.0
            },
        }
    }
}

/// Runs GateKeeper-GPU over a set on `devices` GPUs of a setup.
pub fn gpu_throughput(
    setup: &Setup,
    devices: usize,
    set: &PairSet,
    threshold: u32,
    encoding: EncodingActor,
) -> ThroughputPoint {
    let config = FilterConfig::new(set.read_len, threshold).with_encoding(encoding);
    if devices <= 1 {
        let run = GateKeeperGpu::new(setup.device(), config).filter_set(set);
        ThroughputPoint::new(set.len(), run.kernel_seconds(), run.filter_seconds())
    } else {
        let run = MultiGpuGateKeeper::new(setup.device(), devices, config).filter_set(set);
        ThroughputPoint::new(set.len(), run.kernel_seconds, run.filter_seconds)
    }
}

/// Hard gate on the simulated timeline: a clamped duration means the stream
/// model produced an impossible interval and silently reported a lower bound.
/// Release smokes must fail loudly on that instead of printing a number that
/// looks like a result, so every harness entry point routes through this.
pub fn assert_no_timing_anomalies(context: &str, report: &gk_core::pipeline::PipelineReport) {
    assert_eq!(
        report.timing_anomalies, 0,
        "{context}: simulated timeline clamped {} duration(s) — the pipeline \
         model is unsound for this run",
        report.timing_anomalies,
    );
}

/// Runs GateKeeper-GPU over a set on `devices` GPUs of a setup under an
/// explicit interconnect topology and scheduler, returning the full run —
/// decisions, per-device pipelines, and the contended-vs-private replay in
/// [`MultiGpuRun::interconnect`]. Hard-asserts an anomaly-free timeline on
/// every device.
pub fn multi_gpu_run(
    setup: &Setup,
    devices: usize,
    set: &PairSet,
    threshold: u32,
    encoding: EncodingActor,
    topology: TopologyKind,
    aware: bool,
) -> MultiGpuRun {
    let config = FilterConfig::new(set.read_len, threshold)
        .with_encoding(encoding)
        .with_topology(topology)
        .with_topology_aware(aware);
    let run = MultiGpuGateKeeper::new(setup.device(), devices, config).filter_set(set);
    for (device, device_run) in run.per_device.iter().enumerate() {
        let context = format!("{} x{devices} device {device}", setup.name);
        assert_no_timing_anomalies(&context, &device_run.pipeline);
    }
    run
}

/// Runs the multicore GateKeeper-CPU baseline over a set, on the shared pool
/// for `cores` (no per-call thread spawning). The SIMD mode is `Auto`, so
/// `GK_SIMD=scalar` in the environment forces the per-bit reference kernels.
pub fn cpu_throughput(set: &PairSet, threshold: u32, cores: usize) -> ThroughputPoint {
    cpu_throughput_with_mode(set, threshold, cores, SimdMode::Auto)
}

/// Like [`cpu_throughput`] with an explicit SIMD mode: `Lanes` for the
/// word/lane-parallel kernels, `Scalar` for the per-bit reference baseline the
/// speedup is reported against.
pub fn cpu_throughput_with_mode(
    set: &PairSet,
    threshold: u32,
    cores: usize,
    mode: SimdMode,
) -> ThroughputPoint {
    let run = GateKeeperCpu::with_pool(threshold, cores, shared_pool(cores))
        .with_simd_mode(mode)
        .filter_set(set);
    ThroughputPoint::new(set.len(), run.kernel_seconds, run.filter_seconds)
}

/// Drives a streaming pair source through GateKeeper-GPU on one device of a
/// setup without materializing the pair set; the source's read length sizes
/// the filter configuration. `encoding` selects the execution path:
/// [`EncodingActor::Device`] uploads raw reads and packs inside the fused
/// encode+filter kernel (no host `encode_pair_batch` at all),
/// [`EncodingActor::Host`] encodes on the pool before the transfer. With
/// `host_prefetch` on, the pipeline preps
/// chunk *i+1* on the worker pool while chunk *i*'s kernel closure runs — the
/// measured-wall-clock counterpart of the simulated stream overlap. On pools
/// with at least three workers the source additionally generates the next
/// batch ahead on the pool (`PairBatches::read_ahead`); on smaller pools the
/// serial generation hides under the in-flight encode tasks instead.
pub fn streaming_gpu_throughput(
    setup: &Setup,
    source: PairBatches,
    threshold: u32,
    encoding: EncodingActor,
    overlap: bool,
    chunk_pairs: usize,
    host_prefetch: bool,
) -> StreamFilterRun {
    streaming_gpu_throughput_with(
        setup,
        source,
        threshold,
        encoding,
        overlap,
        chunk_pairs,
        host_prefetch,
        |_, _| {},
    )
}

/// Like [`streaming_gpu_throughput`], handing every chunk's pairs and
/// decisions to `sink` in input order (for callers that checksum or persist
/// decisions without materializing them).
#[allow(clippy::too_many_arguments)]
pub fn streaming_gpu_throughput_with<F>(
    setup: &Setup,
    source: PairBatches,
    threshold: u32,
    encoding: EncodingActor,
    overlap: bool,
    chunk_pairs: usize,
    host_prefetch: bool,
    sink: F,
) -> StreamFilterRun
where
    F: FnMut(&[gk_seq::pairs::SequencePair], &[gk_filters::FilterDecision]),
{
    let config = FilterConfig::new(source.read_len(), threshold)
        .with_encoding(encoding)
        .with_overlap(overlap)
        .with_chunk_pairs(chunk_pairs)
        .with_host_prefetch(host_prefetch);
    let gpu = GateKeeperGpu::new(setup.device(), config);
    // Generating the next batch on the pool only pays off when a worker can be
    // spared for it; on a 2-thread pool the generation task would monopolize a
    // worker the encode/kernel fan-out needs, so the source stays inline there
    // (its generation still hides under the in-flight encode tasks).
    if host_prefetch && rayon::current_num_threads() >= 3 {
        gpu.filter_stream_with(source.read_ahead(), sink)
    } else {
        gpu.filter_stream_with(source, sink)
    }
}

/// Speedup of `baseline_seconds` over `improved_seconds` (≥ 1 means faster).
pub fn speedup(baseline_seconds: f64, improved_seconds: f64) -> f64 {
    if improved_seconds <= 0.0 {
        0.0
    } else {
        baseline_seconds / improved_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::throughput_set;
    use crate::setups::SETUP1;

    #[test]
    fn throughput_point_units_are_consistent() {
        let point = ThroughputPoint::new(1_000_000, 2.0, 10.0);
        assert!((point.kernel_mps - 0.5).abs() < 1e-9);
        assert!(point.kernel_b40 > point.filter_b40);
    }

    #[test]
    fn gpu_beats_cpu_on_kernel_time() {
        let set = throughput_set(100, 3_000);
        let gpu = gpu_throughput(&SETUP1, 1, &set, 2, EncodingActor::Host);
        let cpu = cpu_throughput(&set, 2, 2);
        assert!(gpu.kernel_seconds < cpu.kernel_seconds);
    }

    #[test]
    fn multi_gpu_raises_kernel_throughput() {
        let set = throughput_set(100, 3_000);
        let one = gpu_throughput(&SETUP1, 1, &set, 2, EncodingActor::Host);
        let eight = gpu_throughput(&SETUP1, 8, &set, 2, EncodingActor::Host);
        assert!(eight.kernel_b40 > one.kernel_b40);
    }

    #[test]
    fn multi_gpu_run_reports_contention_on_a_shared_root() {
        let set = throughput_set(100, 2_000);
        let naive = multi_gpu_run(
            &SETUP1,
            4,
            &set,
            2,
            EncodingActor::Device,
            TopologyKind::SharedRoot,
            false,
        );
        let aware = multi_gpu_run(
            &SETUP1,
            4,
            &set,
            2,
            EncodingActor::Device,
            TopologyKind::SharedRoot,
            true,
        );
        assert_eq!(naive.decisions, aware.decisions);
        assert!(naive.interconnect.contention_penalty_seconds() > 0.0);
        assert!(!naive.interconnect.aware);
        assert!(aware.interconnect.aware);
    }

    #[test]
    fn shared_pools_are_reused_per_thread_count() {
        let a = shared_pool(3);
        let b = shared_pool(3);
        let other = shared_pool(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(a.current_num_threads(), 3);
    }

    #[test]
    fn streaming_throughput_reports_the_overlap_win() {
        use gk_seq::datasets::DatasetProfile;
        let profile = DatasetProfile::set3();
        let stream = || profile.stream_batches(5_000, 4_242, 1_000);
        let overlapped =
            streaming_gpu_throughput(&SETUP1, stream(), 2, EncodingActor::Host, true, 500, false);
        let serialized =
            streaming_gpu_throughput(&SETUP1, stream(), 2, EncodingActor::Host, false, 500, false);
        assert_eq!(overlapped.pairs, 5_000);
        assert_eq!(overlapped.batches, 10);
        assert_eq!(overlapped.accepted, serialized.accepted);
        assert_eq!(overlapped.undefined, serialized.undefined);
        assert!(overlapped.pipeline.overlap);
        // Same chunking, same decisions — strictly lower overlapped filter time.
        assert!(overlapped.filter_seconds() < serialized.filter_seconds());
        assert!(overlapped.pipeline.savings_seconds() > 0.0);
    }

    #[test]
    fn host_prefetch_streaming_run_matches_serial_host() {
        use gk_seq::datasets::DatasetProfile;
        let profile = DatasetProfile::set3();
        let stream = || profile.stream_batches(4_000, 99, 800);
        let mut serial_hash = 0u64;
        let serial = streaming_gpu_throughput_with(
            &SETUP1,
            stream(),
            3,
            EncodingActor::Host,
            true,
            400,
            false,
            |_, decisions| {
                for d in decisions {
                    serial_hash = serial_hash
                        .wrapping_mul(1_099_511_628_211)
                        .wrapping_add((u64::from(d.accepted) << 1) | u64::from(d.undefined));
                }
            },
        );
        let mut prefetch_hash = 0u64;
        let prefetched = streaming_gpu_throughput_with(
            &SETUP1,
            stream(),
            3,
            EncodingActor::Host,
            true,
            400,
            true,
            |_, decisions| {
                for d in decisions {
                    prefetch_hash = prefetch_hash
                        .wrapping_mul(1_099_511_628_211)
                        .wrapping_add((u64::from(d.accepted) << 1) | u64::from(d.undefined));
                }
            },
        );
        assert_eq!(serial.pairs, prefetched.pairs);
        assert_eq!(serial.accepted, prefetched.accepted);
        assert_eq!(serial.undefined, prefetched.undefined);
        assert_eq!(serial_hash, prefetch_hash);
        assert_eq!(serial.timing, prefetched.timing);
        assert_eq!(serial.batches, prefetched.batches);
    }

    #[test]
    fn cpu_throughput_runs_in_both_simd_modes() {
        let set = throughput_set(100, 2_000);
        let lanes = cpu_throughput_with_mode(&set, 4, 2, SimdMode::Lanes);
        let scalar = cpu_throughput_with_mode(&set, 4, 2, SimdMode::Scalar);
        assert!(lanes.kernel_seconds > 0.0);
        assert!(scalar.kernel_seconds > 0.0);
        // Lane mode fuses encoding into the kernel, so kernel time == filter time.
        assert!((lanes.kernel_seconds - lanes.filter_seconds).abs() < 1e-12);
        assert!(scalar.filter_seconds >= scalar.kernel_seconds);
    }

    #[test]
    fn speedup_is_ratio() {
        assert!((speedup(10.0, 2.0) - 5.0).abs() < 1e-12);
        assert_eq!(speedup(10.0, 0.0), 0.0);
    }
}
