//! Shared experiment runners used by several harness binaries.

use crate::setups::Setup;
use gk_core::config::{EncodingActor, FilterConfig};
use gk_core::cpu::GateKeeperCpu;
use gk_core::gpu::GateKeeperGpu;
use gk_core::multi_gpu::MultiGpuGateKeeper;
use gk_core::timing::billions_in_40_minutes;
use gk_seq::pairs::PairSet;
use serde::{Deserialize, Serialize};

/// One throughput measurement (a cell family of Table 2 / S.13–S.15).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Kernel time in seconds for the whole set.
    pub kernel_seconds: f64,
    /// Filter time in seconds for the whole set.
    pub filter_seconds: f64,
    /// Kernel-time throughput in billions of filtrations per 40 minutes.
    pub kernel_b40: f64,
    /// Filter-time throughput in billions of filtrations per 40 minutes.
    pub filter_b40: f64,
    /// Kernel-time throughput in millions of filtrations per second.
    pub kernel_mps: f64,
    /// Filter-time throughput in millions of filtrations per second.
    pub filter_mps: f64,
}

impl ThroughputPoint {
    /// Builds a point from measured times over `pairs` filtrations.
    pub fn new(pairs: usize, kernel_seconds: f64, filter_seconds: f64) -> ThroughputPoint {
        ThroughputPoint {
            kernel_seconds,
            filter_seconds,
            kernel_b40: billions_in_40_minutes(pairs, kernel_seconds),
            filter_b40: billions_in_40_minutes(pairs, filter_seconds),
            kernel_mps: if kernel_seconds > 0.0 {
                pairs as f64 / kernel_seconds / 1e6
            } else {
                0.0
            },
            filter_mps: if filter_seconds > 0.0 {
                pairs as f64 / filter_seconds / 1e6
            } else {
                0.0
            },
        }
    }
}

/// Runs GateKeeper-GPU over a set on `devices` GPUs of a setup.
pub fn gpu_throughput(
    setup: &Setup,
    devices: usize,
    set: &PairSet,
    threshold: u32,
    encoding: EncodingActor,
) -> ThroughputPoint {
    let config = FilterConfig::new(set.read_len, threshold).with_encoding(encoding);
    if devices <= 1 {
        let run = GateKeeperGpu::new(setup.device(), config).filter_set(set);
        ThroughputPoint::new(set.len(), run.kernel_seconds(), run.filter_seconds())
    } else {
        let run = MultiGpuGateKeeper::new(setup.device(), devices, config).filter_set(set);
        ThroughputPoint::new(set.len(), run.kernel_seconds, run.filter_seconds)
    }
}

/// Runs the multicore GateKeeper-CPU baseline over a set.
pub fn cpu_throughput(set: &PairSet, threshold: u32, cores: usize) -> ThroughputPoint {
    let run = GateKeeperCpu::new(threshold, cores).filter_set(set);
    ThroughputPoint::new(set.len(), run.kernel_seconds, run.filter_seconds)
}

/// Speedup of `baseline_seconds` over `improved_seconds` (≥ 1 means faster).
pub fn speedup(baseline_seconds: f64, improved_seconds: f64) -> f64 {
    if improved_seconds <= 0.0 {
        0.0
    } else {
        baseline_seconds / improved_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::throughput_set;
    use crate::setups::SETUP1;

    #[test]
    fn throughput_point_units_are_consistent() {
        let point = ThroughputPoint::new(1_000_000, 2.0, 10.0);
        assert!((point.kernel_mps - 0.5).abs() < 1e-9);
        assert!(point.kernel_b40 > point.filter_b40);
    }

    #[test]
    fn gpu_beats_cpu_on_kernel_time() {
        let set = throughput_set(100, 3_000);
        let gpu = gpu_throughput(&SETUP1, 1, &set, 2, EncodingActor::Host);
        let cpu = cpu_throughput(&set, 2, 2);
        assert!(gpu.kernel_seconds < cpu.kernel_seconds);
    }

    #[test]
    fn multi_gpu_raises_kernel_throughput() {
        let set = throughput_set(100, 3_000);
        let one = gpu_throughput(&SETUP1, 1, &set, 2, EncodingActor::Host);
        let eight = gpu_throughput(&SETUP1, 8, &set, 2, EncodingActor::Host);
        assert!(eight.kernel_b40 > one.kernel_b40);
    }

    #[test]
    fn speedup_is_ratio() {
        assert!((speedup(10.0, 2.0) - 5.0).abs() < 1e-12);
        assert_eq!(speedup(10.0, 0.0), 0.0);
    }
}
