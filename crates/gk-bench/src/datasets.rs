//! Scaled instantiations of the paper's datasets for the harness binaries.
//!
//! The paper's pair sets contain 30 million pairs each and the whole-genome runs
//! map millions of reads against GRCh37. The harness reproduces the same
//! *experiments* at a reduced default scale (overridable with `--pairs`, `--reads`,
//! `--genome`), because the compared quantities — rates, ratios, reductions,
//! accuracy percentages — are scale-free.

use gk_seq::datasets::DatasetProfile;
use gk_seq::fastq::FastqRecord;
use gk_seq::pairs::PairSet;
use gk_seq::reference::{Reference, ReferenceBuilder};
use gk_seq::simulate::{ErrorProfile, ReadSimulator};

/// The number of pairs each paper set really contains.
pub const PAPER_SET_SIZE: usize = 30_000_000;

/// Deterministic seed base so every run of a harness binary prints identical rows.
const SEED: u64 = 0x6B67_5F62;

/// Generates the throughput/accuracy set for a read length (the paper's Set 3 /
/// Set 7 / Set 11 family) at the requested scale.
pub fn throughput_set(read_len: usize, pairs: usize) -> PairSet {
    let profile = match read_len {
        100 => DatasetProfile::set3(),
        150 => DatasetProfile::set7(),
        250 => DatasetProfile::set11(),
        other => DatasetProfile::low_edit(other),
    };
    profile.generate(pairs, SEED ^ read_len as u64)
}

/// Generates the low-edit accuracy set for a read length (Set 1 / Set 5 / Set 9).
pub fn low_edit_set(read_len: usize, pairs: usize) -> PairSet {
    let profile = match read_len {
        100 => DatasetProfile::set1(),
        150 => DatasetProfile::set5(),
        250 => DatasetProfile::set9(),
        other => DatasetProfile::low_edit(other),
    };
    profile.generate(pairs, SEED ^ (read_len as u64) << 1)
}

/// Generates the high-edit accuracy set for a read length (Set 4 / Set 8 / Set 12).
pub fn high_edit_set(read_len: usize, pairs: usize) -> PairSet {
    let profile = match read_len {
        100 => DatasetProfile::set4(),
        150 => DatasetProfile::set8(),
        250 => DatasetProfile::set12(),
        other => DatasetProfile::high_edit(other),
    };
    profile.generate(pairs, SEED ^ (read_len as u64) << 2)
}

/// Generates the accuracy-vs-Edlib sets of §5.1.1 (Set 3 / Set 6 / Set 10).
pub fn accuracy_set(read_len: usize, pairs: usize) -> PairSet {
    let profile = match read_len {
        100 => DatasetProfile::set3(),
        150 => DatasetProfile::set6(),
        250 => DatasetProfile::set10(),
        other => DatasetProfile::low_edit(other),
    };
    profile.generate(pairs, SEED ^ (read_len as u64) << 3)
}

/// Minimap2-candidate-like set (Figure S.5).
pub fn minimap2_set(pairs: usize) -> PairSet {
    DatasetProfile::minimap2_like().generate(pairs, SEED ^ 0xA2)
}

/// BWA-MEM-candidate-like set (Figure S.6).
pub fn bwa_mem_set(pairs: usize) -> PairSet {
    DatasetProfile::bwa_mem_like().generate(pairs, SEED ^ 0xB3)
}

/// A synthetic chromosome for the whole-genome experiments: repeat-rich so seeding
/// over-produces candidates, with a couple of assembly gaps.
pub fn whole_genome_reference(length: usize) -> Reference {
    ReferenceBuilder::new(length)
        .seed(SEED)
        .name("chrSim")
        .repeat_fraction(0.4)
        .repeat_family_copies(16)
        .repeat_divergence(0.10)
        .n_gaps(2, length / 500)
        .build()
}

/// Simulated read set in the style of the paper's whole-genome inputs.
pub fn whole_genome_reads(
    reference: &Reference,
    read_len: usize,
    count: usize,
    profile: ErrorProfile,
) -> Vec<FastqRecord> {
    ReadSimulator::new(read_len, profile)
        .seed(SEED ^ read_len as u64 ^ count as u64)
        .simulate(reference, count)
        .iter()
        .map(|r| r.to_fastq())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sets_have_requested_sizes_and_lengths() {
        for len in [100usize, 150, 250] {
            assert_eq!(throughput_set(len, 500).read_len, len);
            assert_eq!(low_edit_set(len, 200).len(), 200);
            assert_eq!(high_edit_set(len, 200).len(), 200);
            assert_eq!(accuracy_set(len, 200).len(), 200);
        }
        assert_eq!(minimap2_set(100).len(), 100);
        assert_eq!(bwa_mem_set(100).len(), 100);
    }

    #[test]
    fn generation_is_deterministic_across_calls() {
        assert_eq!(throughput_set(100, 300), throughput_set(100, 300));
        assert_eq!(low_edit_set(150, 100), low_edit_set(150, 100));
    }

    #[test]
    fn whole_genome_fixture_is_usable() {
        let reference = whole_genome_reference(60_000);
        assert_eq!(reference.name, "chrSim");
        assert!(reference.n_fraction() > 0.0);
        let reads = whole_genome_reads(&reference, 100, 50, ErrorProfile::illumina());
        assert_eq!(reads.len(), 50);
        assert!(reads.iter().all(|r| r.sequence.len() == 100));
    }
}
