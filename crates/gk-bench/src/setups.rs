//! The two experimental setups of §4.2.

use gk_gpusim::device::DeviceSpec;

/// One experimental setup (host + attached GPUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Setup {
    /// Setup name as used in the paper's tables.
    pub name: &'static str,
    /// Number of GPUs attached in the paper's machine.
    pub max_devices: usize,
    /// Number of CPU cores used for the multicore GateKeeper-CPU baseline.
    pub cpu_cores: usize,
    kind: SetupKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetupKind {
    Pascal,
    Kepler,
}

impl Setup {
    /// The device spec of this setup's GPUs.
    pub fn device(&self) -> DeviceSpec {
        match self.kind {
            SetupKind::Pascal => DeviceSpec::gtx_1080_ti(),
            SetupKind::Kepler => DeviceSpec::tesla_k20x(),
        }
    }
}

/// Setup 1: Intel Xeon Gold 6140 host with 8 × GeForce GTX 1080 Ti (PCIe gen 3).
pub const SETUP1: Setup = Setup {
    name: "Setup 1",
    max_devices: 8,
    cpu_cores: 12,
    kind: SetupKind::Pascal,
};

/// Setup 2: Intel Xeon E5-2643 host with 4 × Tesla K20X (PCIe gen 2, no prefetch).
pub const SETUP2: Setup = Setup {
    name: "Setup 2",
    max_devices: 4,
    cpu_cores: 12,
    kind: SetupKind::Kepler,
};

/// Both setups in paper order.
pub fn all_setups() -> [Setup; 2] {
    [SETUP1, SETUP2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_devices_differ() {
        assert_ne!(SETUP1.device().name, SETUP2.device().name);
        assert!(SETUP1.device().supports_prefetch());
        assert!(!SETUP2.device().supports_prefetch());
    }

    #[test]
    fn all_setups_lists_both() {
        assert_eq!(all_setups().len(), 2);
        assert_eq!(all_setups()[0].name, "Setup 1");
    }
}
