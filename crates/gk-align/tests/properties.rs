//! Property-based tests for the alignment substrate.
//!
//! The most important invariant in the whole reproduction is that the Myers
//! bit-vector distance (our Edlib stand-in, the accuracy ground truth) agrees with
//! the straightforward DP on arbitrary inputs — otherwise every accuracy table
//! would be measured against a broken reference.

use gk_align::dp::{banded_levenshtein, hamming, levenshtein};
use gk_align::myers::edit_distance;
use gk_align::nw::{needleman_wunsch, ScoringScheme};
use proptest::prelude::*;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn myers_matches_dp(a in dna(200), b in dna(200)) {
        prop_assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b));
    }

    #[test]
    fn myers_matches_dp_on_long_similar_sequences(a in dna(300), edits in 0usize..12) {
        // Start from a copy and plant a few substitutions so the sequences are similar,
        // which exercises the small-distance paths of the bit-vector kernel.
        let mut b = a.clone();
        for i in 0..edits.min(b.len()) {
            let pos = (i * 37) % b.len().max(1);
            b[pos] = if b[pos] == b'A' { b'C' } else { b'A' };
        }
        prop_assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b));
    }

    #[test]
    fn edit_distance_is_symmetric(a in dna(150), b in dna(150)) {
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn edit_distance_bounded_by_length(a in dna(150), b in dna(150)) {
        let d = edit_distance(&a, &b);
        prop_assert!(d as usize >= a.len().abs_diff(b.len()));
        prop_assert!(d as usize <= a.len().max(b.len()));
    }

    #[test]
    fn hamming_upper_bounds_edit_distance(a in dna(120), b in dna(120)) {
        if a.len() == b.len() {
            prop_assert!(edit_distance(&a, &b) <= hamming(&a, &b).unwrap());
        }
    }

    #[test]
    fn banded_agrees_with_full_dp(a in dna(120), b in dna(120), k in 0u32..20) {
        let full = levenshtein(&a, &b);
        match banded_levenshtein(&a, &b, k) {
            Some(d) => {
                prop_assert_eq!(d, full);
                prop_assert!(d <= k);
            }
            None => prop_assert!(full > k),
        }
    }

    #[test]
    fn banded_with_exact_threshold_is_some(a in dna(100), b in dna(100)) {
        let full = levenshtein(&a, &b);
        prop_assert_eq!(banded_levenshtein(&a, &b, full), Some(full));
    }

    #[test]
    fn identity_has_zero_distance(a in dna(250)) {
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(banded_levenshtein(&a, &a, 0), Some(0));
    }

    #[test]
    fn nw_cigar_covers_both_sequences(a in dna(80), b in dna(80)) {
        let aln = needleman_wunsch(&a, &b, ScoringScheme::default());
        prop_assert_eq!(aln.cigar.read_len() as usize, a.len());
        prop_assert_eq!(aln.cigar.reference_len() as usize, b.len());
    }

    #[test]
    fn nw_edit_path_with_unit_costs_matches_levenshtein(a in dna(60), b in dna(60)) {
        let scoring = ScoringScheme { match_score: 0, mismatch: -1, gap: -1 };
        let aln = needleman_wunsch(&a, &b, scoring);
        prop_assert_eq!(aln.edits, levenshtein(&a, &b));
    }

    #[test]
    fn triangle_inequality(a in dna(60), b in dna(60), c in dna(60)) {
        prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
    }
}
