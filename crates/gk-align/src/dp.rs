//! Dynamic-programming edit distance.
//!
//! These are the "traditional practices" the paper sets out to avoid calling too
//! often (§1): quadratic-time Levenshtein distance, plus the banded (Ukkonen)
//! variant that mrFAST-style verification actually uses — when only distances up to
//! a threshold `e` matter, restricting the DP to a band of width `2e + 1` around the
//! main diagonal reduces the work to `O(e·n)` without changing the answer for pairs
//! inside the threshold.
//!
//! The full DP is also the reference implementation against which the Myers
//! bit-vector algorithm ([`crate::myers`]) is property-tested.

/// Full `O(n·m)` Levenshtein (unit-cost edit) distance between two sequences.
///
/// Uses two rolling rows so memory stays `O(min(n, m))`.
pub fn levenshtein(a: &[u8], b: &[u8]) -> u32 {
    // Keep the shorter sequence as the row to minimise memory.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len() as u32;
    }
    let mut prev: Vec<u32> = (0..=short.len() as u32).collect();
    let mut curr: Vec<u32> = vec![0; short.len() + 1];
    for (i, &cb) in long.iter().enumerate() {
        curr[0] = i as u32 + 1;
        for (j, &ca) in short.iter().enumerate() {
            let cost = u32::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Banded Levenshtein distance (Ukkonen's band): computes the exact edit distance
/// if it is at most `threshold`, otherwise returns `None`.
///
/// This is the verification kernel of a seed-and-extend mapper: a pair is mapped at
/// a candidate location only if its distance is within the error threshold, so any
/// distance above the band is irrelevant and the DP never leaves the band.
pub fn banded_levenshtein(a: &[u8], b: &[u8], threshold: u32) -> Option<u32> {
    let n = a.len();
    let m = b.len();
    let k = threshold as usize;
    if n.abs_diff(m) > k {
        return None;
    }
    if n == 0 {
        return Some(m as u32);
    }
    if m == 0 {
        return Some(n as u32);
    }

    const INF: u32 = u32::MAX / 2;
    let band = 2 * k + 1;
    // prev[d] holds D[i-1][j] for j = i-1 - k + d ; curr[d] holds D[i][j] for j = i - k + d.
    let mut prev = vec![INF; band];
    let mut curr = vec![INF; band];

    // Row 0: D[0][j] = j for j in [0, k].
    for (d, slot) in prev.iter_mut().enumerate() {
        let j = d as isize - k as isize; // j relative offset for i = 0
        if (0..=m as isize).contains(&j) && j <= k as isize {
            *slot = j as u32;
        }
    }

    for i in 1..=n {
        for slot in curr.iter_mut() {
            *slot = INF;
        }
        let lo = i.saturating_sub(k);
        let hi = (i + k).min(m);
        for j in lo..=hi {
            let d = j + k - i; // index into curr
            let mut best = INF;
            // Deletion from `a` (move down): D[i-1][j] + 1 → prev index j + k - (i-1) = d + 1.
            if d + 1 < band && prev[d + 1] < INF {
                best = best.min(prev[d + 1] + 1);
            }
            // Insertion (move right): D[i][j-1] + 1 → curr index d - 1.
            if d > 0 && curr[d - 1] < INF {
                best = best.min(curr[d - 1] + 1);
            }
            // Match / substitution: D[i-1][j-1] + cost → prev index d.
            if j > 0 && prev[d] < INF {
                let cost = u32::from(a[i - 1] != b[j - 1]);
                best = best.min(prev[d] + cost);
            }
            if j == 0 {
                best = i as u32;
            }
            curr[d] = best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    let d = m + k - n;
    if d < band && prev[d] <= threshold {
        Some(prev[d])
    } else {
        None
    }
}

/// Hamming distance (mismatch count) between equal-length sequences; `None` when the
/// lengths differ. Provided for the e = 0 fast path and for tests.
pub fn hamming(a: &[u8], b: &[u8]) -> Option<u32> {
    if a.len() != b.len() {
        return None;
    }
    Some(a.iter().zip(b).filter(|(x, y)| x != y).count() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_have_zero_distance() {
        assert_eq!(levenshtein(b"ACGTACGT", b"ACGTACGT"), 0);
        assert_eq!(banded_levenshtein(b"ACGTACGT", b"ACGTACGT", 0), Some(0));
    }

    #[test]
    fn single_edit_kinds() {
        assert_eq!(levenshtein(b"ACGT", b"AGGT"), 1); // substitution
        assert_eq!(levenshtein(b"ACGT", b"ACGGT"), 1); // insertion
        assert_eq!(levenshtein(b"ACGT", b"AGT"), 1); // deletion
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(levenshtein(b"", b""), 0);
        assert_eq!(levenshtein(b"", b"ACGT"), 4);
        assert_eq!(levenshtein(b"ACGT", b""), 4);
        assert_eq!(banded_levenshtein(b"", b"AC", 2), Some(2));
        assert_eq!(banded_levenshtein(b"", b"AC", 1), None);
    }

    #[test]
    fn classic_textbook_example() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(banded_levenshtein(b"kitten", b"sitting", 3), Some(3));
        assert_eq!(banded_levenshtein(b"kitten", b"sitting", 2), None);
    }

    #[test]
    fn distance_is_symmetric() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"ACGTACGTAC", b"ACGTTCGTAC"),
            (b"AAAA", b"TTTT"),
            (b"ACGT", b"ACG"),
            (b"GATTACA", b"TACTAGATTACA"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn banded_matches_full_when_within_threshold() {
        let a = b"ACGTACGTACGTACGTACGTACGT";
        let b = b"ACGTACCTACGTACGAACGTACGT";
        let full = levenshtein(a, b);
        assert_eq!(banded_levenshtein(a, b, full), Some(full));
        assert_eq!(banded_levenshtein(a, b, full + 3), Some(full));
    }

    #[test]
    fn banded_rejects_above_threshold() {
        let a = b"AAAAAAAAAA";
        let b = b"TTTTTTTTTT";
        assert_eq!(levenshtein(a, b), 10);
        assert_eq!(banded_levenshtein(a, b, 5), None);
        assert_eq!(banded_levenshtein(a, b, 10), Some(10));
    }

    #[test]
    fn banded_length_difference_short_circuit() {
        assert_eq!(banded_levenshtein(b"ACGTACGTACGT", b"AC", 3), None);
    }

    #[test]
    fn hamming_counts_mismatches() {
        assert_eq!(hamming(b"ACGT", b"ACGA"), Some(1));
        assert_eq!(hamming(b"ACGT", b"ACG"), None);
        assert_eq!(hamming(b"", b""), Some(0));
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let seqs: Vec<&[u8]> = vec![b"ACGTACGT", b"ACGTTCGT", b"TTTTACGT", b"ACG"];
        for a in &seqs {
            for b in &seqs {
                for c in &seqs {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }
}
