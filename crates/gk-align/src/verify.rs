//! The verification stage: exact edit-distance checking against a threshold.
//!
//! In a seed-and-extend mapper, *verification* decides whether a candidate location
//! really maps the read within the error threshold — the computationally expensive
//! step GateKeeper-GPU exists to shield (§1, §3.4: "The verification performs the
//! exact edit distance calculation, and GateKeeper-GPU acts as an intermediate step
//! in preparation for verification").
//!
//! [`verify_within`] is the one-shot function; [`Verifier`] adds bookkeeping
//! (counters and an accumulated cost model) so the mapper and the benchmark harness
//! can report how many pairs entered verification and how long it took — the
//! columns of Tables 3–5 of the paper.

use crate::dp::banded_levenshtein;
use crate::myers::edit_distance;
use serde::{Deserialize, Serialize};

/// Returns the exact edit distance if the pair aligns within `threshold`, `None`
/// otherwise. Uses the banded DP, which is exact for all distances ≤ threshold.
pub fn verify_within(read: &[u8], reference: &[u8], threshold: u32) -> Option<u32> {
    banded_levenshtein(read, reference, threshold)
}

/// Statistics accumulated by a [`Verifier`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifierStats {
    /// Number of pairs that entered verification.
    pub pairs_verified: u64,
    /// Number of pairs whose edit distance was within the threshold.
    pub accepted: u64,
    /// Number of pairs rejected by verification.
    pub rejected: u64,
    /// Total number of DP cells evaluated (the banded DP touches ~(2e+1)·n cells
    /// per pair) — the cost proxy used for the "theoretical speedup" of Table 4.
    pub dp_cells: u64,
}

/// Threshold-bound verifier with counters.
#[derive(Debug, Clone)]
pub struct Verifier {
    threshold: u32,
    stats: VerifierStats,
}

impl Verifier {
    /// Creates a verifier for the given error threshold.
    pub fn new(threshold: u32) -> Verifier {
        Verifier {
            threshold,
            stats: VerifierStats::default(),
        }
    }

    /// The error threshold this verifier enforces.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Verifies one pair, updating the counters.
    pub fn verify(&mut self, read: &[u8], reference: &[u8]) -> Option<u32> {
        self.stats.pairs_verified += 1;
        self.stats.dp_cells += (2 * self.threshold as u64 + 1) * read.len().max(1) as u64;
        let result = verify_within(read, reference, self.threshold);
        match result {
            Some(_) => self.stats.accepted += 1,
            None => self.stats.rejected += 1,
        }
        result
    }

    /// Verifies with the full (unbanded) Myers distance — used by the accuracy
    /// harness when the exact distance of rejected pairs is also needed.
    pub fn verify_exact(&mut self, read: &[u8], reference: &[u8]) -> u32 {
        self.stats.pairs_verified += 1;
        self.stats.dp_cells += (read.len() * reference.len() / 64).max(1) as u64;
        let d = edit_distance(read, reference);
        if d <= self.threshold {
            self.stats.accepted += 1;
        } else {
            self.stats.rejected += 1;
        }
        d
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> VerifierStats {
        self.stats
    }

    /// Resets the counters.
    pub fn reset(&mut self) {
        self.stats = VerifierStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_within_accepts_and_rejects() {
        assert_eq!(verify_within(b"ACGTACGT", b"ACGTACGT", 0), Some(0));
        assert_eq!(verify_within(b"ACGTACGT", b"ACGAACGT", 1), Some(1));
        assert_eq!(verify_within(b"ACGTACGT", b"ACGAACGA", 1), None);
    }

    #[test]
    fn verifier_counts_accepts_and_rejects() {
        let mut v = Verifier::new(2);
        assert!(v.verify(b"ACGTACGT", b"ACGTACGT").is_some());
        assert!(v.verify(b"ACGTACGT", b"ACGAACGA").is_some());
        assert!(v.verify(b"AAAAAAAA", b"TTTTTTTT").is_none());
        let stats = v.stats();
        assert_eq!(stats.pairs_verified, 3);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 1);
        assert!(stats.dp_cells > 0);
    }

    #[test]
    fn verify_exact_returns_true_distance_above_threshold() {
        let mut v = Verifier::new(1);
        let d = v.verify_exact(b"AAAAAAAA", b"TTTTTTTT");
        assert_eq!(d, 8);
        assert_eq!(v.stats().rejected, 1);
    }

    #[test]
    fn reset_clears_counters() {
        let mut v = Verifier::new(3);
        v.verify(b"ACGT", b"ACGT");
        v.reset();
        assert_eq!(v.stats(), VerifierStats::default());
    }

    #[test]
    fn threshold_is_exposed() {
        assert_eq!(Verifier::new(7).threshold(), 7);
    }
}
