//! Needleman-Wunsch global alignment with traceback.
//!
//! The paper cites Needleman-Wunsch as the canonical quadratic DP the verification
//! stage relies on (§1). The mapper uses it to produce the final alignment (CIGAR)
//! of a read that survives filtering and verification; the benchmark harness uses
//! its runtime as the "expensive sequence alignment" cost that pre-alignment
//! filtering avoids.

use crate::cigar::{Cigar, CigarOp};
use serde::{Deserialize, Serialize};

/// Match / mismatch / gap scores for score-based alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoringScheme {
    /// Score added for a matching pair of bases (positive).
    pub match_score: i32,
    /// Penalty for a mismatch (negative).
    pub mismatch: i32,
    /// Penalty for a gap base (negative, linear gap model).
    pub gap: i32,
}

impl Default for ScoringScheme {
    fn default() -> Self {
        // The classic edit-distance-like scheme used by mrFAST-style verification.
        ScoringScheme {
            match_score: 1,
            mismatch: -1,
            gap: -1,
        }
    }
}

/// Result of a global alignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalAlignment {
    /// Alignment score under the scoring scheme.
    pub score: i32,
    /// Number of edits (mismatches + gap bases) along the traceback path.
    pub edits: u32,
    /// CIGAR of the alignment (query = read, target = reference segment).
    pub cigar: Cigar,
}

/// Aligns `query` against `target` globally and returns score, edit count, and CIGAR.
pub fn needleman_wunsch(query: &[u8], target: &[u8], scoring: ScoringScheme) -> GlobalAlignment {
    let n = query.len();
    let m = target.len();
    let width = m + 1;

    // Score matrix and traceback matrix, flattened row-major.
    let mut score = vec![0i32; (n + 1) * width];
    let mut trace = vec![0u8; (n + 1) * width]; // 0 = diag, 1 = up (deletion from query view = insertion), 2 = left

    for j in 1..=m {
        score[j] = scoring.gap * j as i32;
        trace[j] = 2;
    }
    for i in 1..=n {
        score[i * width] = scoring.gap * i as i32;
        trace[i * width] = 1;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub = if query[i - 1] == target[j - 1] {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            let diag = score[(i - 1) * width + (j - 1)] + sub;
            let up = score[(i - 1) * width + j] + scoring.gap;
            let left = score[i * width + (j - 1)] + scoring.gap;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            score[i * width + j] = best;
            trace[i * width + j] = dir;
        }
    }

    // Traceback.
    let mut cigar_rev: Vec<(u32, CigarOp)> = Vec::new();
    let push = |op: CigarOp, v: &mut Vec<(u32, CigarOp)>| {
        if let Some(last) = v.last_mut() {
            if last.1 == op {
                last.0 += 1;
                return;
            }
        }
        v.push((1, op));
    };
    let mut edits = 0u32;
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let dir = if i == 0 {
            2
        } else if j == 0 {
            1
        } else {
            trace[i * width + j]
        };
        match dir {
            0 => {
                if query[i - 1] != target[j - 1] {
                    edits += 1;
                }
                push(CigarOp::Match, &mut cigar_rev);
                i -= 1;
                j -= 1;
            }
            1 => {
                // Consume a query base with no target base: insertion to reference.
                edits += 1;
                push(CigarOp::Insertion, &mut cigar_rev);
                i -= 1;
            }
            _ => {
                // Consume a target base with no query base: deletion from reference.
                edits += 1;
                push(CigarOp::Deletion, &mut cigar_rev);
                j -= 1;
            }
        }
    }
    let mut cigar = Cigar::new();
    for (count, op) in cigar_rev.into_iter().rev() {
        cigar.push(op, count);
    }

    GlobalAlignment {
        score: score[n * width + m],
        edits,
        cigar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::levenshtein;

    #[test]
    fn identical_sequences_align_with_all_matches() {
        let a = b"ACGTACGTAC";
        let aln = needleman_wunsch(a, a, ScoringScheme::default());
        assert_eq!(aln.edits, 0);
        assert_eq!(aln.score, a.len() as i32);
        assert_eq!(aln.cigar.to_string(), "10M");
    }

    #[test]
    fn single_substitution() {
        let aln = needleman_wunsch(b"ACGT", b"AGGT", ScoringScheme::default());
        assert_eq!(aln.edits, 1);
        assert_eq!(aln.cigar.to_string(), "4M");
    }

    #[test]
    fn single_insertion_and_deletion() {
        let ins = needleman_wunsch(b"ACGGT", b"ACGT", ScoringScheme::default());
        assert_eq!(ins.edits, 1);
        assert_eq!(ins.cigar.read_len(), 5);
        assert_eq!(ins.cigar.reference_len(), 4);

        let del = needleman_wunsch(b"ACT", b"ACGT", ScoringScheme::default());
        assert_eq!(del.edits, 1);
        assert_eq!(del.cigar.read_len(), 3);
        assert_eq!(del.cigar.reference_len(), 4);
    }

    #[test]
    fn cigar_lengths_always_cover_both_sequences() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"GATTACA", b"TACTAGATTACA"),
            (b"AAAA", b"TTTT"),
            (b"ACGTACGTACGT", b"ACG"),
            (b"", b"ACGT"),
            (b"ACGT", b""),
        ];
        for (q, t) in cases {
            let aln = needleman_wunsch(q, t, ScoringScheme::default());
            assert_eq!(aln.cigar.read_len() as usize, q.len());
            assert_eq!(aln.cigar.reference_len() as usize, t.len());
        }
    }

    #[test]
    fn edits_with_unit_scores_match_levenshtein() {
        // With match=0, mismatch=-1, gap=-1 the optimal path minimises edits, so the
        // traceback edit count equals the Levenshtein distance.
        let scoring = ScoringScheme {
            match_score: 0,
            mismatch: -1,
            gap: -1,
        };
        let cases: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"ACGTACGTAC", b"ACGTTCGTAC"),
            (b"GATTACA", b"GAT"),
            (b"ACGT", b"TGCA"),
        ];
        for (q, t) in cases {
            let aln = needleman_wunsch(q, t, scoring);
            assert_eq!(aln.edits, levenshtein(q, t), "case {q:?} vs {t:?}");
            assert_eq!(aln.score, -(aln.edits as i32));
        }
    }

    #[test]
    fn empty_against_empty() {
        let aln = needleman_wunsch(b"", b"", ScoringScheme::default());
        assert_eq!(aln.score, 0);
        assert_eq!(aln.edits, 0);
        assert!(aln.cigar.is_empty());
    }
}
