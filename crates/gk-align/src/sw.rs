//! Smith-Waterman local alignment with traceback.
//!
//! Cited in the paper (§1) as the other classic quadratic DP used during
//! verification. The mapper does not need local alignment for its core path, but a
//! downstream user of the library (e.g. split-read analysis) does, and the bench
//! harness uses it as a second "expensive aligner" data point.

use crate::cigar::{Cigar, CigarOp};
use crate::nw::ScoringScheme;
use serde::{Deserialize, Serialize};

/// Result of a local alignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalAlignment {
    /// Best local alignment score (≥ 0).
    pub score: i32,
    /// 0-based start of the aligned region on the query.
    pub query_start: usize,
    /// 0-based exclusive end of the aligned region on the query.
    pub query_end: usize,
    /// 0-based start of the aligned region on the target.
    pub target_start: usize,
    /// 0-based exclusive end of the aligned region on the target.
    pub target_end: usize,
    /// CIGAR of the aligned region, with soft clips for the unaligned query ends.
    pub cigar: Cigar,
}

/// Aligns `query` against `target` locally (Smith-Waterman, linear gaps).
pub fn smith_waterman(query: &[u8], target: &[u8], scoring: ScoringScheme) -> LocalAlignment {
    let n = query.len();
    let m = target.len();
    let width = m + 1;
    let mut score = vec![0i32; (n + 1) * width];
    let mut trace = vec![3u8; (n + 1) * width]; // 0 diag, 1 up, 2 left, 3 stop

    let mut best = 0i32;
    let mut best_cell = (0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let sub = if query[i - 1] == target[j - 1] {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            let diag = score[(i - 1) * width + (j - 1)] + sub;
            let up = score[(i - 1) * width + j] + scoring.gap;
            let left = score[i * width + (j - 1)] + scoring.gap;
            let (mut cell, mut dir) = (0i32, 3u8);
            if diag > cell {
                cell = diag;
                dir = 0;
            }
            if up > cell {
                cell = up;
                dir = 1;
            }
            if left > cell {
                cell = left;
                dir = 2;
            }
            score[i * width + j] = cell;
            trace[i * width + j] = dir;
            if cell > best {
                best = cell;
                best_cell = (i, j);
            }
        }
    }

    let (mut i, mut j) = best_cell;
    let (query_end, target_end) = (i, j);
    let mut runs_rev: Vec<(u32, CigarOp)> = Vec::new();
    let push = |op: CigarOp, v: &mut Vec<(u32, CigarOp)>| {
        if let Some(last) = v.last_mut() {
            if last.1 == op {
                last.0 += 1;
                return;
            }
        }
        v.push((1, op));
    };
    while i > 0 && j > 0 && score[i * width + j] > 0 {
        match trace[i * width + j] {
            0 => {
                push(CigarOp::Match, &mut runs_rev);
                i -= 1;
                j -= 1;
            }
            1 => {
                push(CigarOp::Insertion, &mut runs_rev);
                i -= 1;
            }
            2 => {
                push(CigarOp::Deletion, &mut runs_rev);
                j -= 1;
            }
            _ => break,
        }
    }
    let (query_start, target_start) = (i, j);

    let mut cigar = Cigar::new();
    cigar.push(CigarOp::SoftClip, query_start as u32);
    for (count, op) in runs_rev.into_iter().rev() {
        cigar.push(op, count);
    }
    cigar.push(CigarOp::SoftClip, (n - query_end) as u32);

    LocalAlignment {
        score: best,
        query_start,
        query_end,
        target_start,
        target_end,
        cigar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_align_fully() {
        let a = b"ACGTACGT";
        let aln = smith_waterman(a, a, ScoringScheme::default());
        assert_eq!(aln.score, 8);
        assert_eq!(aln.query_start, 0);
        assert_eq!(aln.query_end, 8);
        assert_eq!(aln.cigar.to_string(), "8M");
    }

    #[test]
    fn finds_embedded_match() {
        // Query matches a region in the middle of the target.
        let query = b"GGGGACGTACGTGGGG";
        let target = b"TTTTTTACGTACGTTTTTTT";
        let aln = smith_waterman(query, target, ScoringScheme::default());
        assert!(aln.score >= 8);
        let matched = &query[aln.query_start..aln.query_end];
        let target_matched = &target[aln.target_start..aln.target_end];
        assert!(matched.len() >= 8);
        assert_eq!(matched.len(), target_matched.len());
    }

    #[test]
    fn soft_clips_cover_unaligned_query_ends() {
        let query = b"TTTACGTACGTAAA";
        let target = b"ACGTACGT";
        let aln = smith_waterman(query, target, ScoringScheme::default());
        assert_eq!(aln.cigar.read_len() as usize, query.len());
    }

    #[test]
    fn dissimilar_sequences_have_low_score() {
        let aln = smith_waterman(b"AAAAAAA", b"TTTTTTT", ScoringScheme::default());
        assert_eq!(aln.score, 0);
    }

    #[test]
    fn local_score_never_negative() {
        let aln = smith_waterman(b"ACACAC", b"GTGTGT", ScoringScheme::default());
        assert!(aln.score >= 0);
    }

    #[test]
    fn empty_inputs() {
        let aln = smith_waterman(b"", b"ACGT", ScoringScheme::default());
        assert_eq!(aln.score, 0);
        let aln = smith_waterman(b"ACGT", b"", ScoringScheme::default());
        assert_eq!(aln.score, 0);
    }
}
