//! # gk-align
//!
//! Alignment and edit-distance substrate for the GateKeeper-GPU reproduction.
//!
//! The paper leans on two alignment components that are external tools in the
//! original work and are re-implemented here from scratch:
//!
//! * **Edlib** is the ground truth for every accuracy table — its global alignment
//!   mode computes the exact Levenshtein distance of each pair. Edlib implements
//!   Myers' bit-vector algorithm; [`myers`] provides the same algorithm (block-based
//!   for patterns longer than 64 bases), and [`dp`] provides the straightforward
//!   dynamic-programming computation used to cross-check it.
//! * **Verification** in mrFAST is a banded edit-distance check against the error
//!   threshold, followed by alignment for reporting; [`dp::banded_levenshtein`] and
//!   the traceback aligners in [`nw`] / [`sw`] cover that role, with CIGAR output in
//!   [`cigar`].
//!
//! Everything operates on plain ASCII `&[u8]` sequences so the crate is usable both
//! on raw reads and on segments extracted from a reference genome.

#![warn(missing_docs)]

pub mod cigar;
pub mod dp;
pub mod myers;
pub mod nw;
pub mod sw;
pub mod verify;

pub use cigar::{Cigar, CigarOp};
pub use dp::{banded_levenshtein, levenshtein};
pub use myers::edit_distance;
pub use nw::{needleman_wunsch, GlobalAlignment, ScoringScheme};
pub use sw::{smith_waterman, LocalAlignment};
pub use verify::{verify_within, Verifier};
