//! CIGAR strings describing alignments.
//!
//! Mappers report verified alignments in SAM format, whose CIGAR column encodes the
//! sequence of matches/mismatches, insertions and deletions. The traceback aligners
//! in [`crate::nw`] and [`crate::sw`] produce a [`Cigar`]; the mapper crate embeds it
//! in its mapping records.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One CIGAR operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CigarOp {
    /// Alignment match or mismatch (`M`).
    Match,
    /// Insertion to the reference (read base with no reference base, `I`).
    Insertion,
    /// Deletion from the reference (reference base with no read base, `D`).
    Deletion,
    /// Soft clip (read base not aligned, `S`).
    SoftClip,
}

impl CigarOp {
    /// SAM character for this operation.
    pub fn symbol(self) -> char {
        match self {
            CigarOp::Match => 'M',
            CigarOp::Insertion => 'I',
            CigarOp::Deletion => 'D',
            CigarOp::SoftClip => 'S',
        }
    }

    /// True if the operation consumes a read base.
    pub fn consumes_read(self) -> bool {
        matches!(
            self,
            CigarOp::Match | CigarOp::Insertion | CigarOp::SoftClip
        )
    }

    /// True if the operation consumes a reference base.
    pub fn consumes_reference(self) -> bool {
        matches!(self, CigarOp::Match | CigarOp::Deletion)
    }
}

/// A run-length-encoded CIGAR string.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cigar {
    ops: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// Creates an empty CIGAR.
    pub fn new() -> Cigar {
        Cigar::default()
    }

    /// Appends `count` repetitions of `op`, merging with the previous run when the
    /// operation matches.
    pub fn push(&mut self, op: CigarOp, count: u32) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.ops.last_mut() {
            if last.1 == op {
                last.0 += count;
                return;
            }
        }
        self.ops.push((count, op));
    }

    /// Runs of the CIGAR in order.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.ops
    }

    /// True when the CIGAR holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of read bases covered.
    pub fn read_len(&self) -> u32 {
        self.ops
            .iter()
            .filter(|(_, op)| op.consumes_read())
            .map(|(n, _)| n)
            .sum()
    }

    /// Number of reference bases covered.
    pub fn reference_len(&self) -> u32 {
        self.ops
            .iter()
            .filter(|(_, op)| op.consumes_reference())
            .map(|(n, _)| n)
            .sum()
    }

    /// Total number of inserted plus deleted bases (gap bases).
    pub fn gap_bases(&self) -> u32 {
        self.ops
            .iter()
            .filter(|(_, op)| matches!(op, CigarOp::Insertion | CigarOp::Deletion))
            .map(|(n, _)| n)
            .sum()
    }

    /// Reverses the CIGAR (used when reporting reverse-strand alignments).
    pub fn reversed(&self) -> Cigar {
        Cigar {
            ops: self.ops.iter().rev().cloned().collect(),
        }
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return f.write_str("*");
        }
        for (count, op) in &self.ops {
            write!(f, "{}{}", count, op.symbol())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_adjacent_runs() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 10);
        c.push(CigarOp::Match, 5);
        c.push(CigarOp::Insertion, 1);
        c.push(CigarOp::Match, 3);
        assert_eq!(c.runs().len(), 3);
        assert_eq!(c.to_string(), "15M1I3M");
    }

    #[test]
    fn zero_count_is_ignored() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 0);
        assert!(c.is_empty());
        assert_eq!(c.to_string(), "*");
    }

    #[test]
    fn read_and_reference_lengths() {
        let mut c = Cigar::new();
        c.push(CigarOp::SoftClip, 2);
        c.push(CigarOp::Match, 10);
        c.push(CigarOp::Insertion, 3);
        c.push(CigarOp::Deletion, 4);
        c.push(CigarOp::Match, 5);
        assert_eq!(c.read_len(), 2 + 10 + 3 + 5);
        assert_eq!(c.reference_len(), 10 + 4 + 5);
        assert_eq!(c.gap_bases(), 7);
    }

    #[test]
    fn reversed_reverses_run_order() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 4);
        c.push(CigarOp::Deletion, 1);
        c.push(CigarOp::Match, 6);
        assert_eq!(c.reversed().to_string(), "6M1D4M");
    }

    #[test]
    fn op_consumption_flags() {
        assert!(CigarOp::Match.consumes_read() && CigarOp::Match.consumes_reference());
        assert!(CigarOp::Insertion.consumes_read() && !CigarOp::Insertion.consumes_reference());
        assert!(!CigarOp::Deletion.consumes_read() && CigarOp::Deletion.consumes_reference());
        assert!(CigarOp::SoftClip.consumes_read() && !CigarOp::SoftClip.consumes_reference());
    }
}
