//! Myers' bit-vector edit distance — the algorithm behind Edlib.
//!
//! The paper uses Edlib's *global* alignment mode as the accuracy ground truth
//! (§2.3, §4.4). Edlib is an implementation of Myers' 1999 bit-parallel algorithm
//! with Hyyrö's block extension for patterns longer than the machine word. This
//! module re-implements that algorithm:
//!
//! * [`edit_distance_64`] — single-word kernel for patterns of at most 64 bases;
//! * [`edit_distance`] — block-based kernel for arbitrary pattern lengths (reads in
//!   the paper are 50–300 bp, i.e. up to five 64-base blocks).
//!
//! Both compute the exact global (Needleman-Wunsch / Levenshtein) distance in
//! `O(⌈m/64⌉ · n)` word operations, and both are property-tested against the plain
//! DP in [`crate::dp`].

const WORD_BITS: usize = 64;

/// Per-character match masks for a pattern (the `Peq` table of Myers' algorithm).
///
/// Building the table once and reusing it across many texts is how Edlib (and the
/// verification stage of a mapper) amortises preprocessing; [`PatternBlocks::distance`]
/// runs the column loop only.
#[derive(Debug, Clone)]
pub struct PatternBlocks {
    /// `peq[block][byte]`: bit `i` set iff `pattern[block*64 + i] == byte`.
    peq: Vec<[u64; 256]>,
    len: usize,
}

impl PatternBlocks {
    /// Preprocesses a pattern into per-block match masks.
    pub fn new(pattern: &[u8]) -> PatternBlocks {
        let blocks = pattern.len().div_ceil(WORD_BITS).max(1);
        let mut peq = vec![[0u64; 256]; blocks];
        for (i, &ch) in pattern.iter().enumerate() {
            peq[i / WORD_BITS][ch as usize] |= 1u64 << (i % WORD_BITS);
        }
        PatternBlocks {
            peq,
            len: pattern.len(),
        }
    }

    /// Pattern length in bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the pattern is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Global edit distance between the preprocessed pattern and `text`.
    pub fn distance(&self, text: &[u8]) -> u32 {
        if self.len == 0 {
            return text.len() as u32;
        }
        if text.is_empty() {
            return self.len as u32;
        }
        let blocks = self.peq.len();
        let mut pv = vec![u64::MAX; blocks];
        let mut mv = vec![0u64; blocks];
        // Score is tracked at the last pattern row.
        let mut score = self.len as u32;
        let last_block = (self.len - 1) / WORD_BITS;
        let last_bit = 1u64 << ((self.len - 1) % WORD_BITS);

        for &ch in text {
            // Horizontal input into the bottom row of block 0 is +1: the first DP
            // row of a *global* alignment is 0,1,2,…
            let mut hin: i32 = 1;
            for b in 0..=last_block {
                let eq = self.peq[b][ch as usize];
                let (new_pv, new_mv, hout, ph, mh) = advance_block(eq, pv[b], mv[b], hin);
                pv[b] = new_pv;
                mv[b] = new_mv;
                if b == last_block {
                    if ph & last_bit != 0 {
                        score += 1;
                    } else if mh & last_bit != 0 {
                        score -= 1;
                    }
                }
                hin = hout;
            }
        }
        score
    }
}

/// One column step of a 64-row block (Hyyrö's `advance_block`, as used in Edlib).
///
/// Returns `(pv, mv, hout, ph, mh)` where `ph`/`mh` are the *pre-shift* horizontal
/// delta vectors so the caller can read the delta at an arbitrary row (needed when
/// the pattern does not fill the top block).
#[inline]
fn advance_block(eq: u64, pv: u64, mv: u64, hin: i32) -> (u64, u64, i32, u64, u64) {
    let mut eq = eq;
    let xv = eq | mv;
    if hin < 0 {
        eq |= 1;
    }
    let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
    let ph = mv | !(xh | pv);
    let mh = pv & xh;

    let mut hout = 0i32;
    if ph & (1u64 << 63) != 0 {
        hout = 1;
    } else if mh & (1u64 << 63) != 0 {
        hout = -1;
    }

    let mut ph_shift = ph << 1;
    let mut mh_shift = mh << 1;
    if hin < 0 {
        mh_shift |= 1;
    } else if hin > 0 {
        ph_shift |= 1;
    }

    let new_pv = mh_shift | !(xv | ph_shift);
    let new_mv = ph_shift & xv;
    (new_pv, new_mv, hout, ph, mh)
}

/// Global edit distance with the single-word Myers kernel.
///
/// # Panics
/// Panics if `pattern.len() > 64`; use [`edit_distance`] for longer patterns.
pub fn edit_distance_64(pattern: &[u8], text: &[u8]) -> u32 {
    assert!(
        pattern.len() <= WORD_BITS,
        "pattern of {} bases exceeds the 64-base single-word kernel",
        pattern.len()
    );
    if pattern.is_empty() {
        return text.len() as u32;
    }
    if text.is_empty() {
        return pattern.len() as u32;
    }
    let mut peq = [0u64; 256];
    for (i, &ch) in pattern.iter().enumerate() {
        peq[ch as usize] |= 1u64 << i;
    }
    let m = pattern.len();
    let last = 1u64 << (m - 1);
    let mut pv = u64::MAX;
    let mut mv = 0u64;
    let mut score = m as u32;
    for &ch in text {
        let eq = peq[ch as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & last != 0 {
            score += 1;
        } else if mh & last != 0 {
            score -= 1;
        }
        // Horizontal input at row 0 is +1 for global alignment.
        let ph = (ph << 1) | 1;
        let mh = mh << 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// Global (Levenshtein) edit distance between two sequences using Myers' bit-vector
/// algorithm, with block extension for patterns longer than 64 bases. This is the
/// Edlib-equivalent entry point used as ground truth throughout the reproduction.
pub fn edit_distance(a: &[u8], b: &[u8]) -> u32 {
    // The shorter sequence becomes the (vertical) pattern to minimise block count.
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pattern.len() <= WORD_BITS {
        edit_distance_64(pattern, text)
    } else {
        PatternBlocks::new(pattern).distance(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::levenshtein;

    #[test]
    fn matches_dp_on_small_cases() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"A", b""),
            (b"", b"ACGT"),
            (b"ACGT", b"ACGT"),
            (b"ACGT", b"AGGT"),
            (b"ACGT", b"ACGGT"),
            (b"ACGT", b"AGT"),
            (b"kitten", b"sitting"),
            (b"GATTACA", b"TACTAGATTACA"),
            (b"AAAA", b"TTTT"),
        ];
        for (a, b) in cases {
            assert_eq!(
                edit_distance(a, b),
                levenshtein(a, b),
                "case {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn single_word_kernel_matches_dp() {
        let a = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"; // 61
        let b = b"ACGTACGTACGTTCGTACGTACGTACGAACGTACGTACGTACGTACGGACGTACGTACGT";
        assert_eq!(edit_distance_64(a, b), levenshtein(a, b));
    }

    #[test]
    #[should_panic(expected = "exceeds the 64-base")]
    fn single_word_kernel_rejects_long_patterns() {
        let long = vec![b'A'; 65];
        edit_distance_64(&long, b"ACGT");
    }

    #[test]
    fn block_kernel_handles_100bp_reads() {
        // 100 bp with a few planted edits, like the paper's primary read length.
        let a: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        b[10] = b'T';
        b[55] = b'A';
        b.remove(80);
        b.push(b'G');
        assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b));
    }

    #[test]
    fn block_kernel_handles_exact_multiples_of_64() {
        let a: Vec<u8> = (0..128).map(|i| b"ACGT"[(i * 7) % 4]).collect();
        let mut b = a.clone();
        b[0] = if b[0] == b'A' { b'C' } else { b'A' };
        b[127] = if b[127] == b'G' { b'T' } else { b'G' };
        assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b));
        assert_eq!(edit_distance(&a, &a), 0);
    }

    #[test]
    fn block_kernel_handles_250_and_300bp_reads() {
        for len in [250usize, 300] {
            let a: Vec<u8> = (0..len).map(|i| b"ACGT"[(i * 13 + 1) % 4]).collect();
            let mut b = a.clone();
            for pos in (0..len).step_by(37) {
                b[pos] = b"ACGT"[(pos + 2) % 4];
            }
            b.drain(100..103);
            assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b));
        }
    }

    #[test]
    fn completely_different_sequences() {
        let a = vec![b'A'; 200];
        let b = vec![b'T'; 200];
        assert_eq!(edit_distance(&a, &b), 200);
    }

    #[test]
    fn distance_is_symmetric() {
        let a: Vec<u8> = (0..150).map(|i| b"ACGT"[(i * 3) % 4]).collect();
        let b: Vec<u8> = (0..140).map(|i| b"ACGT"[(i * 5 + 1) % 4]).collect();
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn pattern_blocks_reuse_across_texts() {
        let pattern: Vec<u8> = (0..150).map(|i| b"ACGT"[(i * 11) % 4]).collect();
        let blocks = PatternBlocks::new(&pattern);
        assert_eq!(blocks.len(), 150);
        for shift in 0..4 {
            let text: Vec<u8> = (0..150).map(|i| b"ACGT"[(i * 11 + shift) % 4]).collect();
            assert_eq!(blocks.distance(&text), levenshtein(&pattern, &text));
        }
    }

    #[test]
    fn empty_pattern_blocks() {
        let blocks = PatternBlocks::new(b"");
        assert!(blocks.is_empty());
        assert_eq!(blocks.distance(b"ACGT"), 4);
    }
}
