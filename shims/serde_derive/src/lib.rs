//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro crate
//! accepts `#[derive(Serialize, Deserialize)]` (including `#[serde(...)]`
//! attributes) and expands to nothing. Nothing in the workspace actually
//! serializes at runtime yet; the derives only need to parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
