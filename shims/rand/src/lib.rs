//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the API the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}` — on top
//! of xoshiro256++ seeded by SplitMix64. Streams are deterministic for a given
//! seed (which the seed tests rely on) but are NOT the same streams the real
//! `rand` crate produces; nothing in the workspace depends on specific values,
//! only on determinism and reasonable uniformity.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a range (mirrors `rand::distributions::uniform::SampleUniform`).
///
/// The single blanket `SampleRange` impl below is what lets integer literals in
/// `rng.gen_range(0..4)` unify with the surrounding usage type, exactly as in
/// the real crate.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_between(start, end, true, rng)
    }
}

/// High-level convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(start: Self, end: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                (start as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(start < end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
