//! Offline stand-in for `criterion`.
//!
//! Supports the subset of the API the `gk-bench` suites use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `bench_with_input`, `bench_function`,
//! `Throughput`, `BenchmarkId`). Instead of criterion's statistical machinery it
//! runs one warm-up iteration plus a small fixed sample and prints the mean wall
//! time per iteration, so `cargo bench` stays fast and dependency-free.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Iterations actually timed per benchmark, regardless of `sample_size` requests
/// (the shim reports a coarse mean, not a distribution).
const SHIM_SAMPLES: u64 = 3;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation; recorded and echoed but not converted into rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, outside the timed window
        let start = Instant::now();
        for _ in 0..SHIM_SAMPLES {
            black_box(routine());
        }
        self.mean = start.elapsed() / SHIM_SAMPLES as u32;
    }
}

/// A named collection of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.run_one(&name, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        match throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                println!(
                    "bench: {name:<60} {:>12.3?} / iter ({n} bytes)",
                    bencher.mean
                )
            }
            Some(Throughput::Elements(n)) => {
                println!(
                    "bench: {name:<60} {:>12.3?} / iter ({n} elements)",
                    bencher.mean
                )
            }
            None => println!("bench: {name:<60} {:>12.3?} / iter", bencher.mean),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
