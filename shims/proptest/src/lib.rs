//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the API the workspace's property suites use:
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`sample::select`], `ProptestConfig::with_cases`, and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, deliberate for an offline environment:
//! inputs are drawn from a deterministic per-case RNG (no persisted failure
//! seeds), there is no shrinking — a failing case panics with the assertion
//! message — and `prop_assert*` are plain `assert*` wrappers. Each test still
//! runs `cases` independently generated inputs.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value (mirrors `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification accepted by [`vec()`] (mirrors `proptest::collection::SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_inclusive: len,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max_inclusive: range.end.saturating_sub(1).max(range.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max_inclusive: (*range.end()).max(*range.start()),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy choosing uniformly among fixed options (mirrors `proptest::sample::select`).
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub rng: StdRng,
    }

    impl TestRng {
        /// Derives the RNG for one test case. Seeding by case index keeps runs
        /// reproducible without persisted seed files.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                rng: StdRng::seed_from_u64(0xC0FF_EE00_0000_0000 ^ case),
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::TestRng::for_case(case as u64);
                let ($($arg,)+) = (
                    $( $crate::strategy::Strategy::generate(&($strategy), &mut proptest_rng), )+
                );
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(crate::sample::select(vec![1u8, 2, 3]), 0..max_len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_respects_bounds(v in bytes(10)) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|b| (1..=3).contains(b)));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0usize..5, 0u8..=2).prop_map(|(x, y)| (x + 1, y)), k in 1u32..4) {
            prop_assert!((1..=5).contains(&a));
            prop_assert!(b <= 2);
            prop_assert!((1..4).contains(&k));
        }
    }
}
