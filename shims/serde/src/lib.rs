//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait and derive-macro
//! namespaces, mirroring the real crate) so seed sources compile unchanged in
//! an environment without registry access. The derives expand to nothing and
//! the traits carry no methods; swap this shim for the real crate by editing
//! `[workspace.dependencies]` once the network is available.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
