//! Schedule-permutation audit leg, compiled only under
//! `RUSTFLAGS=--cfg gk_schedules` (the `schedules` CI job):
//!
//!     RUSTFLAGS='--cfg gk_schedules' cargo test -p rayon --test schedules
//!
//! The same scenarios also run in the plain unit suite (`cargo test -p
//! rayon`); this leg re-runs them as an integration crate — i.e. against the
//! library compiled *without* `cfg(test)` — so the audit also covers the
//! exact cfg combination production code is built with.
#![cfg(gk_schedules)]

use std::collections::HashSet;

use rayon::schedule::{adversarial_seeds, run_scenario, sweep};

#[test]
fn committed_corpus_replays_exactly_once() {
    let corpus = adversarial_seeds();
    assert!(corpus.len() >= 16, "corpus unexpectedly small");
    for (seed, threads) in corpus {
        run_scenario(seed, threads);
    }
}

#[test]
fn thousand_distinct_interleavings_exactly_once() {
    let reports = sweep(1100);
    let distinct: HashSet<u64> = reports.iter().map(|r| r.trace_hash).collect();
    assert!(
        distinct.len() >= 1000,
        "only {} distinct interleavings across {} runs",
        distinct.len(),
        reports.len(),
    );
}

#[test]
fn wide_pools_survive_the_corpus() {
    for (seed, _) in adversarial_seeds().into_iter().take(8) {
        run_scenario(seed, 8);
    }
}
