//! Unit and stress tests for the work-stealing pool behind the rayon shim:
//! real-worker introspection, panic propagation, nested `join`/`scope`,
//! degenerate inputs, oversubscription, and a repeated-run flakiness loop.

use rayon::prelude::*;
use rayon::slice::ParallelSlice;
use std::collections::HashSet;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// True when this process is expected to run parallel (no `RAYON_NUM_THREADS=1`
/// override and more than one core available).
fn expect_parallel() -> bool {
    rayon::current_num_threads() > 1
}

// ---------------------------------------------------------------------------
// Pool introspection: the shim must spawn real worker threads.
// ---------------------------------------------------------------------------

#[test]
fn pool_reports_more_than_one_worker_on_multicore() {
    let available = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let env_override = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    match env_override {
        Some(n) => assert_eq!(rayon::current_num_threads(), n),
        None => assert_eq!(rayon::current_num_threads(), available),
    }
    if env_override.unwrap_or(available) > 1 {
        assert!(
            rayon::current_num_threads() > 1,
            "multicore machine must get a multi-thread pool"
        );
    }
}

#[test]
fn work_executes_on_spawned_worker_threads() {
    if !expect_parallel() {
        return; // sequential fallback: everything runs inline by design
    }
    // Two tasks rendezvous: each waits until both have started, which is only
    // possible if they run concurrently on distinct threads.
    let arrived = AtomicUsize::new(0);
    let names: Mutex<Vec<Option<String>>> = Mutex::new(Vec::new());
    rayon::scope(|s| {
        for _ in 0..2 {
            s.spawn(|_| {
                names
                    .lock()
                    .unwrap()
                    .push(thread::current().name().map(String::from));
                arrived.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(10);
                while arrived.load(Ordering::SeqCst) < 2 {
                    assert!(Instant::now() < deadline, "tasks never ran concurrently");
                    thread::yield_now();
                }
            });
        }
    });
    assert_eq!(arrived.load(Ordering::SeqCst), 2);
    // Non-worker callers do not steal work, so both tasks must have run on
    // named pool workers; assert at least one to stay robust.
    let names = names.lock().unwrap();
    assert!(
        names
            .iter()
            .flatten()
            .any(|name| name.starts_with("rayon-worker")),
        "no task ran on a pool worker thread: {names:?}"
    );
}

#[test]
fn distinct_threads_observed_under_load() {
    if !expect_parallel() {
        return;
    }
    let ids = Mutex::new(HashSet::new());
    (0..64).into_par_iter().for_each(|_| {
        ids.lock().unwrap().insert(thread::current().id());
        thread::sleep(Duration::from_millis(2));
    });
    assert!(
        ids.lock().unwrap().len() > 1,
        "64 sleepy tasks should spread over more than one thread"
    );
}

#[test]
fn current_thread_index_is_none_off_pool() {
    assert_eq!(rayon::current_thread_index(), None);
    if !expect_parallel() {
        return;
    }
    let saw_worker_index = Mutex::new(false);
    (0..64).into_par_iter().for_each(|_| {
        if rayon::current_thread_index().is_some() {
            *saw_worker_index.lock().unwrap() = true;
        }
        thread::sleep(Duration::from_millis(1));
    });
    assert!(
        *saw_worker_index.lock().unwrap(),
        "no task observed a worker thread index"
    );
}

// ---------------------------------------------------------------------------
// Panic propagation.
// ---------------------------------------------------------------------------

#[test]
fn panic_in_parallel_task_propagates_to_caller() {
    let result = panic::catch_unwind(|| {
        (0..1000usize).into_par_iter().for_each(|i| {
            if i == 537 {
                panic!("boom at {i}");
            }
        });
    });
    let payload = result.expect_err("panic must propagate");
    let message = payload.downcast_ref::<String>().expect("string payload");
    assert!(message.contains("boom at 537"), "got: {message}");
}

#[test]
fn pool_remains_usable_after_a_panicked_operation() {
    let _ = panic::catch_unwind(|| {
        (0..100usize)
            .into_par_iter()
            .for_each(|_| panic!("every task panics"));
    });
    let doubled: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
    assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
}

#[test]
fn join_propagates_panic_from_either_side() {
    let a_panics = panic::catch_unwind(|| rayon::join(|| panic!("left"), || 1));
    assert!(a_panics.is_err());
    let b_panics = panic::catch_unwind(|| rayon::join(|| 1, || panic!("right")));
    assert!(b_panics.is_err());
    let both_panic =
        panic::catch_unwind(|| rayon::join(|| panic!("left of both"), || panic!("right of both")));
    assert!(both_panic.is_err());
    // And the pool still works.
    assert_eq!(rayon::join(|| 6 * 7, || 6 + 7), (42, 13));
}

#[test]
fn scope_waits_for_tasks_before_propagating_panic() {
    let finished = AtomicUsize::new(0);
    let result = panic::catch_unwind(|| {
        rayon::scope(|s| {
            for i in 0..16 {
                s.spawn(|_| {
                    thread::sleep(Duration::from_millis(1));
                    finished.fetch_add(1, Ordering::SeqCst);
                });
                if i == 7 {
                    // Body panics while tasks are still queued/running.
                    panic!("scope body panic");
                }
            }
        });
    });
    assert!(result.is_err());
    // Every task spawned before the panic still ran to completion.
    assert_eq!(finished.load(Ordering::SeqCst), 8);
}

// ---------------------------------------------------------------------------
// join / scope semantics, including nesting.
// ---------------------------------------------------------------------------

/// Parallel divide-and-conquer sum via nested joins.
fn join_sum(values: &[u64]) -> u64 {
    if values.len() <= 8 {
        return values.iter().sum();
    }
    let mid = values.len() / 2;
    let (left, right) = values.split_at(mid);
    let (a, b) = rayon::join(|| join_sum(left), || join_sum(right));
    a + b
}

#[test]
fn nested_joins_compute_the_sequential_answer() {
    let values: Vec<u64> = (0..10_000).collect();
    assert_eq!(join_sum(&values), values.iter().sum::<u64>());
}

#[test]
fn join_returns_both_closure_results() {
    let (a, b) = rayon::join(|| "left".to_string(), || vec![1, 2, 3]);
    assert_eq!(a, "left");
    assert_eq!(b, vec![1, 2, 3]);
}

#[test]
fn nested_scopes_and_spawn_from_spawn() {
    let counter = AtomicUsize::new(0);
    rayon::scope(|s| {
        for _ in 0..4 {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                // Tasks may spawn siblings onto the same scope.
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
    });
    assert_eq!(counter.load(Ordering::SeqCst), 8);
}

#[test]
fn parallel_iterator_nested_inside_parallel_iterator() {
    // Exercises help-while-waiting: workers that hit the inner par_iter must
    // keep executing queued tasks instead of deadlocking.
    let totals: Vec<u64> = (0..16u64)
        .into_par_iter()
        .map(|i| (0..1_000u64).into_par_iter().map(|j| i + j).sum::<u64>())
        .collect();
    let expected: Vec<u64> = (0..16u64)
        .map(|i| (0..1_000u64).map(|j| i + j).sum::<u64>())
        .collect();
    assert_eq!(totals, expected);
}

// ---------------------------------------------------------------------------
// Degenerate inputs.
// ---------------------------------------------------------------------------

#[test]
fn empty_and_single_element_inputs() {
    let empty: Vec<u32> = Vec::new();
    let collected: Vec<u32> = empty.par_iter().map(|&x| x + 1).collect();
    assert!(collected.is_empty());
    assert_eq!(Vec::<u32>::new().into_par_iter().count(), 0);
    assert_eq!(Vec::<u32>::new().into_par_iter().sum::<u32>(), 0);
    assert_eq!(
        Vec::<u32>::new().into_par_iter().reduce(|| 7, |a, b| a + b),
        7
    );

    let one = [41u32];
    let collected: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
    assert_eq!(collected, vec![42]);
    assert_eq!(one.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b), 41);
}

#[test]
fn par_iter_mut_updates_in_place() {
    let mut values: Vec<u64> = (0..4096).collect();
    values
        .par_iter_mut()
        .for_each(|v| *v = v.wrapping_mul(3) + 1);
    let expected: Vec<u64> = (0..4096u64).map(|v| v.wrapping_mul(3) + 1).collect();
    assert_eq!(values, expected);
}

#[test]
fn combinators_match_sequential_semantics() {
    let input: Vec<i64> = (-500..500).collect();
    let par: Vec<i64> = input
        .par_iter()
        .map(|&x| x * 3)
        .filter(|&x| x % 2 == 0)
        .filter_map(|x| if x >= 0 { Some(x / 2) } else { None })
        .flat_map(|x| [x, x + 1])
        .collect();
    let seq: Vec<i64> = input
        .iter()
        .map(|&x| x * 3)
        .filter(|&x| x % 2 == 0)
        .filter_map(|x| if x >= 0 { Some(x / 2) } else { None })
        .flat_map(|x| [x, x + 1])
        .collect();
    assert_eq!(par, seq);

    let par_zip: i64 = input
        .par_iter()
        .zip(input.par_iter())
        .enumerate()
        .map(|(i, (&a, &b))| a * b + i as i64)
        .sum();
    let seq_zip: i64 = input
        .iter()
        .zip(input.iter())
        .enumerate()
        .map(|(i, (&a, &b))| a * b + i as i64)
        .sum();
    assert_eq!(par_zip, seq_zip);
}

// ---------------------------------------------------------------------------
// par_chunks.
// ---------------------------------------------------------------------------

#[test]
fn par_chunks_covers_every_element_in_order() {
    let data: Vec<u32> = (0..1000).collect();
    for chunk_size in [1usize, 3, 7, 100, 999, 1000, 5000] {
        let reassembled: Vec<u32> = data
            .par_chunks(chunk_size)
            .flat_map(|chunk| chunk.to_vec())
            .collect();
        assert_eq!(reassembled, data, "chunk_size = {chunk_size}");
        let chunk_count = data.par_chunks(chunk_size).count();
        assert_eq!(chunk_count, data.len().div_ceil(chunk_size));
    }
}

#[test]
#[should_panic(expected = "chunk size must be non-zero")]
fn par_chunks_rejects_zero_chunk_size() {
    let data = [1u8, 2, 3];
    let _ = data.par_chunks(0).count();
}

// ---------------------------------------------------------------------------
// Dedicated pools and the sequential fallback.
// ---------------------------------------------------------------------------

#[test]
fn installed_pool_controls_thread_count() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build()
        .unwrap();
    assert_eq!(pool.current_num_threads(), 3);
    assert_eq!(pool.install(rayon::current_num_threads), 3);
    // Outside install, the global pool is current again.
    assert_ne!(rayon::current_num_threads(), 0);
}

#[test]
fn single_thread_pool_runs_inline_on_the_caller() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let caller = thread::current().id();
    let ids: Vec<_> = pool.install(|| {
        (0..256usize)
            .into_par_iter()
            .map(|_| thread::current().id())
            .collect()
    });
    assert!(
        ids.iter().all(|&id| id == caller),
        "sequential fallback must not leave the calling thread"
    );
}

#[test]
fn install_on_own_pool_from_its_workers_does_not_deadlock() {
    // Tasks running on the pool's workers re-install the same pool and start
    // nested operations; the workers must keep their identity (and help)
    // instead of blocking, or the pool wedges with all workers waiting.
    let pool = std::sync::Arc::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap(),
    );
    let nested_pool = pool.clone();
    pool.install(|| {
        (0..8).into_par_iter().for_each(|_| {
            let sum: u64 = nested_pool.install(|| (0..1_000u64).into_par_iter().sum());
            assert_eq!(sum, 1_000 * 999 / 2);
        });
    });
}

#[test]
fn dropping_a_pool_joins_its_workers() {
    for _ in 0..8 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let sum: u64 = pool.install(|| (0..10_000u64).into_par_iter().sum());
        assert_eq!(sum, 10_000 * 9_999 / 2);
        drop(pool); // must not hang or leak panics
    }
}

// ---------------------------------------------------------------------------
// Oversubscription and stress.
// ---------------------------------------------------------------------------

#[test]
fn oversubscription_tasks_far_exceeding_workers() {
    // Thousands of scope tasks against a handful of workers.
    let counter = AtomicUsize::new(0);
    rayon::scope(|s| {
        for _ in 0..4_000 {
            s.spawn(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 4_000);

    // And a wide data-parallel op: far more items than threads.
    let n = 200_000usize;
    let sum: u64 = (0..n as u64).into_par_iter().map(|x| x % 17).sum();
    assert_eq!(sum, (0..n as u64).map(|x| x % 17).sum::<u64>());
}

#[test]
fn repeated_runs_are_flake_free() {
    // x100 loop shaking out races: every iteration mixes map/collect, join and
    // reduce, and compares against the sequential answer.
    for round in 0..100u64 {
        let len = 64 + (round as usize * 37) % 1024;
        let input: Vec<u64> = (0..len as u64).map(|i| i * round).collect();

        let mapped: Vec<u64> = input.par_iter().map(|&x| x ^ round).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x ^ round).collect();
        assert_eq!(mapped, expected, "round {round}");

        let (left, right) = rayon::join(
            || input.iter().take(len / 2).sum::<u64>(),
            || input.iter().skip(len / 2).sum::<u64>(),
        );
        let total = input
            .par_iter()
            .map(|&x| x)
            .reduce(|| 0, |a, b| a.wrapping_add(b));
        assert_eq!(left + right, total, "round {round}");
    }
}

#[test]
fn spawn_handle_returns_the_task_result() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let handle = pool.spawn(|| (0..100u64).sum::<u64>());
    assert_eq!(handle.join(), 4_950);

    // Top-level spawn targets the current (global) pool the same way.
    let global = rayon::spawn(|| "done".to_string());
    assert_eq!(global.join(), "done");
}

#[test]
fn spawn_runs_inline_on_a_sequential_pool() {
    // On a one-thread pool (the RAYON_NUM_THREADS=1 fallback) the closure runs
    // before spawn returns, so spawn-based pipelines degrade to serial order.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let ran = Arc::new(AtomicUsize::new(0));
    let flag = ran.clone();
    let handle = pool.spawn(move || flag.fetch_add(1, Ordering::SeqCst));
    assert_eq!(ran.load(Ordering::SeqCst), 1, "task should have run inline");
    assert!(handle.is_finished());
    handle.join();
}

#[test]
fn spawn_panics_propagate_on_join() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap();
    let handle = pool.spawn(|| -> usize { panic!("spawned task exploded") });
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.join()));
    let payload = outcome.expect_err("panic must propagate through join");
    let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(message, "spawned task exploded");
}

#[test]
fn spawned_prefetch_overlaps_with_caller_work() {
    // The host-prefetch pattern: the caller processes chunk i while the pool
    // encodes chunk i+1. Both sides make progress; results come back in order.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap();
    let mut pending = std::collections::VecDeque::new();
    let mut results = Vec::new();
    for chunk in 0..16u64 {
        pending.push_back(pool.spawn(move || chunk * chunk));
        if pending.len() >= 2 {
            results.push(pending.pop_front().unwrap().join());
        }
    }
    while let Some(handle) = pending.pop_front() {
        results.push(handle.join());
    }
    let expected: Vec<u64> = (0..16u64).map(|c| c * c).collect();
    assert_eq!(results, expected);
}

#[test]
fn many_spawns_complete_under_contention() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build()
        .unwrap();
    let handles: Vec<rayon::JoinHandle<u64>> =
        (0..500u64).map(|i| pool.spawn(move || i * 3)).collect();
    let total: u64 = handles.into_iter().map(|h| h.join()).sum();
    assert_eq!(total, 3 * (0..500u64).sum::<u64>());
}

#[test]
fn panic_propagation_survives_a_hundred_spawn_join_cycles() {
    // Satellite of the concurrency audit: ×100 stress over JoinHandle panic
    // propagation. Each round spawns a mix of panicking and clean tasks on
    // the pool this process is configured with (the CI thread matrix runs
    // this file under RAYON_NUM_THREADS ∈ {1, 2, 4}, so the sequential
    // fallback, a minimal pool and an oversubscribed pool all see it) and
    // asserts that every panic surfaces through exactly its own handle and
    // that the pool stays fully usable afterwards.
    for round in 0..100u64 {
        let doomed = rayon::spawn(move || -> u64 {
            panic!("round {round}: doomed task");
        });
        let survivors: Vec<rayon::JoinHandle<u64>> = (0..4u64)
            .map(|i| rayon::spawn(move || round * 10 + i))
            .collect();
        let outcome = panic::catch_unwind(panic::AssertUnwindSafe(|| doomed.join()));
        let payload = outcome.expect_err("panic must propagate through join");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(message, format!("round {round}: doomed task"));
        for (i, handle) in survivors.into_iter().enumerate() {
            assert_eq!(handle.join(), round * 10 + i as u64);
        }
        // The pool must not be poisoned by the panic it just delivered.
        let sum: u64 = (0..64u64).into_par_iter().map(|x| x + round).sum();
        assert_eq!(sum, (0..64u64).sum::<u64>() + 64 * round);
    }
}
