//! Loom-lite schedule permutation for the work-stealing pool.
//!
//! Real loom model-checks every interleaving of a bounded program; that needs
//! an instrumented `std` replacement this offline shim cannot depend on. This
//! layer takes the pragmatic middle ground: the pool reports every queue
//! transition (push, pop, steal attempt, help/worker loop iteration — see
//! [`crate::pool::SchedPoint`]) to a seeded [`Controller`], which injects
//! yields, short sleeps and steal-order shuffles at those points. Each seed
//! deterministically *pressures* the pool toward a different interleaving;
//! the fingerprint of the transitions actually observed (a running FNV hash
//! over `(point, decision)` events in global arrival order) tells distinct
//! explored schedules apart.
//!
//! [`run_scenario`] drives one full workout of the pool under a controller —
//! fan-out with nested joins, nested scopes, detached spawn handles, a
//! panic-propagation leg and a join-trap probe — and asserts the two
//! invariants the audit cares about:
//!
//! 1. **exactly-once execution**: every task bumps its own counter, and every
//!    counter must read exactly 1 at the end;
//! 2. **no join traps**: joining a finished-soon task returns even while an
//!    unrelated top-level task sits parked in the pool (a joiner must never
//!    get stuck executing whole injector tasks past its own latch).
//!
//! The module is compiled only under `cfg(test)` (unit suite, runs in plain
//! `cargo test`) and `--cfg gk_schedules` (the dedicated CI leg driving the
//! integration suite in `tests/schedules.rs` plus the committed seed corpus
//! in `tests/schedule_seeds.txt`).

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::pool::{self, Registry, RegistryGuard, SchedPoint};

/// Committed corpus of adversarial seeds (see [`adversarial_seeds`]).
pub const SEED_CORPUS: &str = include_str!("../tests/schedule_seeds.txt");

/// Deterministic schedule perturbator shared by every thread of one pool.
///
/// All state sits behind one mutex: the controller is itself a serialization
/// point, which is intentional — the order in which racing threads win this
/// lock *is* the interleaving being fingerprinted.
pub struct Controller {
    state: Mutex<ControllerState>,
}

struct ControllerState {
    /// splitmix64 state; seeded per scenario.
    rng: u64,
    /// Running FNV-1a hash over `(point, decision)` events in arrival order.
    trace_hash: u64,
    /// Total events observed.
    events: u64,
    /// Yields injected.
    yields: u64,
    /// Sleeps injected.
    sleeps: u64,
}

/// What one scenario run looked like, for dedup and corpus ranking.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioReport {
    /// The seed the scenario ran under.
    pub seed: u64,
    /// Worker threads in the pool.
    pub threads: usize,
    /// Fingerprint of the observed interleaving.
    pub trace_hash: u64,
    /// Queue-transition events observed.
    pub events: u64,
    /// Yields the controller injected.
    pub yields: u64,
    /// Sleeps the controller injected.
    pub sleeps: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn point_id(point: SchedPoint) -> u64 {
    match point {
        SchedPoint::Push => 1,
        SchedPoint::PopOwn => 2,
        SchedPoint::PopInjector => 3,
        SchedPoint::Steal => 4,
        SchedPoint::HelpWait => 5,
        SchedPoint::WorkerLoop => 6,
    }
}

impl Controller {
    /// A controller whose whole decision stream is a function of `seed`.
    pub fn new(seed: u64) -> Controller {
        Controller {
            state: Mutex::new(ControllerState {
                rng: seed ^ 0xd1b5_4a32_d192_ed03,
                trace_hash: FNV_OFFSET,
                events: 0,
                yields: 0,
                sleeps: 0,
            }),
        }
    }

    /// Draws the next decision, folding `(point, decision)` into the trace.
    fn decide(&self, point: SchedPoint) -> u64 {
        let mut state = self.state.lock().unwrap();
        let decision = splitmix64(&mut state.rng);
        let mut hash = state.trace_hash;
        for byte in [point_id(point) as u8, (decision & 0xff) as u8] {
            hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        state.trace_hash = hash;
        state.events += 1;
        decision
    }

    /// Perturbs the calling thread at `point`: possibly nothing, one or more
    /// `yield_now`s, or (only at the enqueue/steal points, where contention is
    /// interesting and the caller is not inside a wait loop) a microsecond
    /// sleep — enough to let a racing thread win the next queue lock.
    pub(crate) fn perturb(&self, point: SchedPoint) {
        let decision = self.decide(point);
        let heavy = matches!(point, SchedPoint::Push | SchedPoint::Steal);
        match decision & 0x7 {
            0..=3 => {}
            4 | 5 => {
                thread::yield_now();
                self.state.lock().unwrap().yields += 1;
            }
            6 => {
                for _ in 0..1 + (decision >> 3) % 3 {
                    thread::yield_now();
                }
                self.state.lock().unwrap().yields += 1;
            }
            _ => {
                if heavy {
                    thread::sleep(Duration::from_micros(1 + (decision >> 3) % 20));
                    self.state.lock().unwrap().sleeps += 1;
                } else {
                    thread::yield_now();
                    self.state.lock().unwrap().yields += 1;
                }
            }
        }
    }

    /// Picks where a thief starts its victim scan: the default round-robin
    /// start half the time, a seeded rotation otherwise.
    pub(crate) fn steal_start(&self, default: usize, victims: usize) -> usize {
        if victims == 0 {
            return default;
        }
        let decision = self.decide(SchedPoint::Steal);
        if decision & 1 == 0 {
            default
        } else {
            ((decision >> 1) % victims as u64) as usize
        }
    }

    fn report(&self, seed: u64, threads: usize) -> ScenarioReport {
        let state = self.state.lock().unwrap();
        ScenarioReport {
            seed,
            threads,
            trace_hash: state.trace_hash,
            events: state.events,
            yields: state.yields,
            sleeps: state.sleeps,
        }
    }
}

/// Tasks the scenario accounts for in its exactly-once check.
const SCENARIO_TASKS: usize = 16;

/// Runs the full pool workout once on a dedicated `threads`-worker pool whose
/// every queue transition is perturbed by a [`Controller`] seeded with `seed`.
///
/// Panics if any task runs zero times or more than once, if a join result is
/// wrong, if the spawned panic fails to propagate, or if a worker exits
/// uncleanly. Returns the run's [`ScenarioReport`] for interleaving dedup.
pub fn run_scenario(seed: u64, threads: usize) -> ScenarioReport {
    assert!(threads >= 2, "scenario needs a real pool, got {threads}");
    let controller = Arc::new(Controller::new(seed));
    let (registry, workers) = Registry::spawn_scheduled(threads, "gk-sched", controller.clone());

    let ran: Vec<AtomicUsize> = (0..SCENARIO_TASKS).map(|_| AtomicUsize::new(0)).collect();
    let ran = Arc::new(ran);
    {
        let _frame = RegistryGuard::enter(registry.clone(), None);

        // Phase 1 — fan-out with a nested join per task (tasks 0..8). This is
        // the parallel-iterator shape: injector push, worker pops, nested
        // subtask pushes onto worker deques, cross-worker steals.
        pool::run_parallel(8, |index| {
            let (a, b) = pool::join(|| 10 + index, || 20 + index);
            assert_eq!((a, b), (10 + index, 20 + index));
            ran[index].fetch_add(1, Ordering::SeqCst);
        });

        // Phase 2 — nested scopes: spawn-from-spawn exercises latch add_one
        // racing the epilogue's help loop (tasks 8..12).
        pool::scope(|outer| {
            outer.spawn(|inner| {
                ran[8].fetch_add(1, Ordering::SeqCst);
                inner.spawn(|_| {
                    ran[9].fetch_add(1, Ordering::SeqCst);
                });
            });
            outer.spawn(|_| {
                ran[10].fetch_add(1, Ordering::SeqCst);
            });
            ran[11].fetch_add(1, Ordering::SeqCst);
        });

        // Phase 3 — detached handles (tasks 12..16). A sentinel task parks one
        // worker on a channel; joining the quick tasks while it sits there is
        // the no-join-trap probe (the joiner steals worker-deque subtasks
        // only, so it must come back even though a top-level task is blocked).
        let (release, gate) = mpsc::channel::<()>();
        let sentinel = pool::spawn_task(registry.clone(), {
            let ran = ran.clone();
            move || {
                gate.recv().expect("scenario always releases the sentinel");
                ran[12].fetch_add(1, Ordering::SeqCst);
            }
        });
        let quick: Vec<_> = [13usize, 14]
            .into_iter()
            .map(|index| {
                pool::spawn_task(registry.clone(), {
                    let ran = ran.clone();
                    move || {
                        ran[index].fetch_add(1, Ordering::SeqCst);
                        index
                    }
                })
            })
            .collect();
        for (handle, expected) in quick.into_iter().zip([13usize, 14]) {
            assert_eq!(
                handle.join(),
                expected,
                "join returned the wrong task's result"
            );
        }
        let boom = pool::spawn_task(registry.clone(), || -> usize {
            panic!("schedule-harness probe panic");
        });
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| boom.join()));
        assert!(
            outcome.is_err(),
            "spawned panic must propagate through join"
        );
        release.send(()).expect("sentinel still waiting");
        sentinel.join();
        ran[15].fetch_add(1, Ordering::SeqCst);
    }

    registry.shutdown();
    for worker in workers {
        worker.join().expect("pool worker exited uncleanly");
    }
    for (task, counter) in ran.iter().enumerate() {
        assert_eq!(
            counter.load(Ordering::SeqCst),
            1,
            "task {task} must run exactly once under seed {seed:#x}",
        );
    }
    controller.report(seed, threads)
}

/// Derives the `index`-th sweep seed (golden-ratio stride over `u64`).
pub fn sweep_seed(index: u64) -> u64 {
    (index + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6a09_e667_f3bc_c909
}

/// Runs `count` scenarios over seeds `0..count` (2–4 workers, round-robin)
/// and returns the reports. Every run asserts exactly-once execution.
pub fn sweep(count: u64) -> Vec<ScenarioReport> {
    (0..count)
        .map(|index| run_scenario(sweep_seed(index), 2 + (index % 3) as usize))
        .collect()
}

/// Parses the committed corpus: one `seed threads` pair per non-comment line.
pub fn adversarial_seeds() -> Vec<(u64, usize)> {
    SEED_CORPUS
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| {
            let mut fields = line.split_whitespace();
            let seed = fields
                .next()
                .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
                .expect("corpus line must start with a hex seed");
            let threads = fields
                .next()
                .and_then(|s| s.parse().ok())
                .expect("corpus line must carry a thread count");
            (seed, threads)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn controller_is_deterministic_per_seed() {
        let a = Controller::new(42);
        let b = Controller::new(42);
        for point in [SchedPoint::Push, SchedPoint::Steal, SchedPoint::PopOwn] {
            assert_eq!(a.decide(point), b.decide(point));
        }
        assert_eq!(
            a.state.lock().unwrap().trace_hash,
            b.state.lock().unwrap().trace_hash,
        );
    }

    #[test]
    fn single_scenario_runs_every_task_exactly_once() {
        let report = run_scenario(0xdead_beef, 2);
        assert!(report.events > 0, "the controller saw no pool activity");
    }

    #[test]
    fn adversarial_seed_corpus_replays_exactly_once() {
        let corpus = adversarial_seeds();
        assert!(corpus.len() >= 16, "corpus unexpectedly small");
        for (seed, threads) in corpus {
            run_scenario(seed, threads);
        }
    }

    /// The acceptance bar for the concurrency audit: at least 1000 distinct
    /// interleavings explored, every one of them passing the exactly-once and
    /// no-join-trap asserts inside `run_scenario`.
    #[test]
    fn thousand_distinct_interleavings_exactly_once() {
        let reports = sweep(1100);
        let distinct: HashSet<u64> = reports.iter().map(|r| r.trace_hash).collect();
        assert!(
            distinct.len() >= 1000,
            "only {} distinct interleavings across {} runs",
            distinct.len(),
            reports.len(),
        );
    }

    /// Ranks sweep seeds by observed contention; run with `--ignored
    /// --nocapture` to regenerate `tests/schedule_seeds.txt`.
    #[test]
    #[ignore = "corpus generation helper, not a check"]
    fn rank_seeds_for_corpus() {
        let mut reports = sweep(400);
        reports.sort_by_key(|r| std::cmp::Reverse(r.sleeps * 1000 + r.events));
        for report in reports.iter().take(24) {
            println!(
                "{:#018x} {} # events={} yields={} sleeps={}",
                report.seed, report.threads, report.events, report.yields, report.sleeps,
            );
        }
    }
}
