//! Parallel iterators over materialized item sets.
//!
//! Unlike real rayon, which builds a lazy producer/consumer pipeline, this
//! shim materializes the source items into a `Vec` and then executes each
//! combinator **eagerly** across the pool: the items are split into ordered
//! chunks (a few per worker), each chunk is processed as one stealable task,
//! and the per-chunk outputs are reassembled in order. That keeps every output
//! byte-identical to a sequential run — the workspace only uses
//! order-preserving combinators — while the expensive per-item closures
//! (filter kernels, 2-bit encoding, edit-distance verification) genuinely fan
//! out across worker threads.
//!
//! Closure bounds are `Fn + Sync` and items are `Send`, exactly as a real
//! parallel backend requires (the sequential shim used to accept `FnMut`).

use crate::pool;
use std::sync::Mutex;

/// Tasks created per pool thread by one combinator: a little oversubscription
/// so work-stealing can rebalance uneven chunks.
const CHUNKS_PER_THREAD: usize = 4;

/// One input chunk, taken by the task that processes it.
type ChunkSlot<T> = Mutex<Option<Vec<T>>>;

/// Rayon-style parallel iterator over an already-materialized item set.
///
/// Inherent methods reproduce the rayon signatures the workspace uses
/// (notably `reduce(identity, op)`); [`IntoIterator`] is implemented so the
/// items can also be drained sequentially.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub(crate) fn from_vec(items: Vec<T>) -> ParIter<T> {
        ParIter { items }
    }

    /// Number of items currently in the pipeline.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the pipeline holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter::from_vec(process_chunks(self.items, |chunk| {
            chunk.into_iter().map(&f).collect()
        }))
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        ParIter::from_vec(process_chunks(self.items, |chunk| {
            chunk.into_iter().filter(|item| f(item)).collect()
        }))
    }

    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        ParIter::from_vec(process_chunks(self.items, |chunk| {
            chunk.into_iter().filter_map(&f).collect()
        }))
    }

    pub fn flat_map<R, F>(self, f: F) -> ParIter<R::Item>
    where
        R: IntoIterator,
        R::Item: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter::from_vec(process_chunks(self.items, |chunk| {
            chunk.into_iter().flat_map(&f).collect()
        }))
    }

    /// Attaches the (stable, input-order) index to every item.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter::from_vec(self.items.into_iter().enumerate().collect())
    }

    /// Pairs items with another parallel source, truncating to the shorter.
    pub fn zip<Z>(self, other: Z) -> ParIter<(T, Z::Item)>
    where
        Z: IntoParallelIterator,
    {
        ParIter::from_vec(self.items.into_iter().zip(other.into_par_iter()).collect())
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = self.map(f);
    }

    /// Drains the (already parallel-processed) items into any collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        process_chunks(self.items, |chunk| vec![chunk.into_iter().sum::<S>()])
            .into_iter()
            .sum()
    }

    /// Rayon-style reduce: identity element plus an associative combiner.
    /// Partial results are folded per chunk and combined in input order, so
    /// the result is deterministic for any associative `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        if self.items.is_empty() {
            return identity();
        }
        process_chunks(self.items, |chunk| {
            vec![chunk.into_iter().fold(identity(), &op)]
        })
        .into_iter()
        .fold(identity(), op)
    }
}

impl<T: Send> IntoIterator for ParIter<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// Splits `items` into ordered chunks, runs `process` over every chunk as a
/// stealable pool task, and reassembles the per-chunk outputs in input order.
/// Sequential-fallback pools (and trivially small inputs) process inline,
/// producing byte-identical output by construction.
pub(crate) fn process_chunks<T, R, F>(items: Vec<T>, process: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> Vec<R> + Sync,
{
    let total = items.len();
    let threads = pool::current_num_threads();
    if threads <= 1 || total < 2 {
        return process(items);
    }

    let chunk_count = total.min(threads * CHUNKS_PER_THREAD);
    let chunk_size = total.div_ceil(chunk_count);
    // Single O(n) pass: each item is moved into its chunk exactly once.
    let mut chunks: Vec<ChunkSlot<T>> = Vec::with_capacity(chunk_count);
    let mut source = items.into_iter();
    loop {
        let chunk: Vec<T> = source.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(Mutex::new(Some(chunk)));
    }

    let outputs: Vec<Mutex<Option<Vec<R>>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    pool::run_parallel(chunks.len(), |index| {
        let chunk = chunks[index]
            .lock()
            .unwrap()
            .take()
            .expect("chunk executed twice");
        let result = process(chunk);
        *outputs[index].lock().unwrap() = Some(result);
    });

    let mut reassembled = Vec::with_capacity(total);
    for slot in outputs {
        let mut part = slot
            .into_inner()
            .unwrap()
            .expect("chunk finished without a result");
        reassembled.append(&mut part);
    }
    reassembled
}

/// By-value conversion, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: IntoIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = ParIter<I::Item>;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}

/// Shared-reference conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    type Iter: IntoIterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized> IntoParallelRefIterator<'data> for C
where
    C: 'data,
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send + 'data,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = ParIter<Self::Item>;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}

/// Mutable-reference conversion, mirroring `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send + 'data;
    type Iter: IntoIterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: ?Sized> IntoParallelRefMutIterator<'data> for C
where
    C: 'data,
    &'data mut C: IntoIterator,
    <&'data mut C as IntoIterator>::Item: Send + 'data,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = ParIter<Self::Item>;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}
