//! Offline stand-in for `rayon`.
//!
//! The build environment has no registry access, so this crate exposes rayon's
//! `par_iter` / `into_par_iter` / `par_iter_mut` entry points but executes
//! sequentially: each method simply returns the corresponding `std` iterator,
//! so every downstream combinator (`map`, `zip`, `collect`, …) is the standard
//! library's. Results are bit-identical to a real parallel run because the
//! workspace only uses order-preserving combinators; only wall-clock parallelism
//! is lost. Swap in the real crate via `[workspace.dependencies]` to get it back.

pub mod iter {
    /// Sequential stand-in for rayon's parallel iterators.
    ///
    /// Inherent methods reproduce the rayon-specific signatures (notably
    /// `reduce(identity, op)`); anything not defined here falls through to the
    /// delegating [`Iterator`] impl, so the full std combinator set is usable.
    pub struct ParIter<I>(I);

    impl<I: Iterator> Iterator for ParIter<I> {
        type Item = I::Item;

        fn next(&mut self) -> Option<I::Item> {
            self.0.next()
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    impl<I: Iterator> ParIter<I> {
        pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
            ParIter(self.0.map(f))
        }

        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
            ParIter(self.0.filter(f))
        }

        pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
            self,
            f: F,
        ) -> ParIter<std::iter::FilterMap<I, F>> {
            ParIter(self.0.filter_map(f))
        }

        pub fn flat_map<R: IntoIterator, F: FnMut(I::Item) -> R>(
            self,
            f: F,
        ) -> ParIter<std::iter::FlatMap<I, R, F>> {
            ParIter(self.0.flat_map(f))
        }

        pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
            ParIter(self.0.enumerate())
        }

        pub fn zip<Z: IntoParallelIterator>(
            self,
            other: Z,
        ) -> ParIter<std::iter::Zip<I, <Z::Iter as IntoIterator>::IntoIter>>
        where
            Z::Iter: IntoIterator<Item = Z::Item>,
        {
            ParIter(self.0.zip(other.into_par_iter()))
        }

        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        pub fn count(self) -> usize {
            self.0.count()
        }

        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// Rayon-style reduce: identity element plus associative combiner.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }
    }

    /// By-value conversion, mirroring `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: IntoIterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = ParIter<I::IntoIter>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter(self.into_iter())
        }
    }

    /// Shared-reference conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: IntoIterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized> IntoParallelRefIterator<'data> for C
    where
        C: 'data,
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: 'data,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = ParIter<<&'data C as IntoIterator>::IntoIter>;
        fn par_iter(&'data self) -> Self::Iter {
            ParIter(self.into_iter())
        }
    }

    /// Mutable-reference conversion, mirroring `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: IntoIterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        C: 'data,
        &'data mut C: IntoIterator,
        <&'data mut C as IntoIterator>::Item: 'data,
    {
        type Item = <&'data mut C as IntoIterator>::Item;
        type Iter = ParIter<<&'data mut C as IntoIterator>::IntoIter>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            ParIter(self.into_iter())
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

/// Error type for [`ThreadPoolBuilder::build`]; the sequential pool cannot fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sequential rayon shim thread pool cannot fail to build")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the (sequential) thread pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                1
            } else {
                self.num_threads
            },
        })
    }
}

/// A pool that runs closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Mirrors `rayon::current_num_threads`; the shim is single-threaded.
pub fn current_num_threads() -> usize {
    1
}

/// Mirrors `rayon::join`, executing both closures sequentially.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (oper_a(), oper_b())
}
