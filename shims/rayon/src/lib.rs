//! Offline stand-in for `rayon`, backed by a real work-stealing thread pool.
//!
//! The build environment has no registry access, so this crate reproduces the
//! slice of rayon's API the workspace uses — `par_iter` / `into_par_iter` /
//! `par_iter_mut` / `par_chunks`, `join`, `scope`, and `ThreadPoolBuilder` /
//! `ThreadPool::install` — on top of a hand-rolled pool (see the `pool` module for the
//! design: a global injector plus per-worker Chase–Lev-style deques drained by
//! `std::thread` workers, help-while-waiting for deadlock-free nesting, and
//! per-operation panic capture).
//!
//! Differences from real rayon, deliberate for an offline shim:
//!
//! * Parallel iterators materialize their items and evaluate each combinator
//!   eagerly over ordered chunks instead of building a lazy pipeline. Results
//!   are **byte-identical to a sequential run** for the order-preserving
//!   combinators this workspace uses; only scheduling differs.
//! * The worker deques use mutexed `VecDeque`s with the Chase–Lev access
//!   discipline (owner LIFO, thieves FIFO) rather than lock-free buffers.
//!
//! Thread-count control mirrors rayon: the global pool is sized from
//! `RAYON_NUM_THREADS` when set (a positive integer), otherwise from
//! `std::thread::available_parallelism`. **`RAYON_NUM_THREADS=1` is the
//! sequential debugging fallback** — no workers are spawned and every
//! operation runs inline on the calling thread. Per-call-site counts go
//! through `ThreadPoolBuilder::new().num_threads(n).build()` and
//! [`ThreadPool::install`], exactly like the real crate. Swap in real rayon by
//! pointing the `rayon` entry of `[workspace.dependencies]` at crates.io — no
//! source changes are needed.

pub mod iter;
mod pool;
/// Loom-lite schedule-permutation layer for the concurrency audit. Compiled
/// only for the unit suite (`cfg(test)`) and the dedicated audit leg
/// (`RUSTFLAGS=--cfg gk_schedules`); absent from production builds.
#[cfg(any(test, gk_schedules))]
pub mod schedule;
pub mod slice;

pub use pool::{JoinHandle, Scope};

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::ParallelSlice;
}

/// Error type for [`ThreadPoolBuilder::build`]. Kept for API compatibility;
/// the only failure mode (worker spawn failure) aborts instead.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a dedicated [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests an exact worker count; `0` (the default) means "size from
    /// `RAYON_NUM_THREADS` / `available_parallelism`", as in real rayon.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            pool::default_num_threads()
        } else {
            self.num_threads
        };
        let (registry, handles) = pool::Registry::spawn(num_threads, "rayon-pool-worker");
        Ok(ThreadPool { registry, handles })
    }
}

/// A dedicated pool with its own workers. Operations run inside
/// [`install`](ThreadPool::install) fan out to this pool instead of the global
/// one; with `num_threads(1)` the pool is the sequential fallback and
/// everything runs inline.
pub struct ThreadPool {
    registry: std::sync::Arc<pool::Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `op` with this pool as the current parallelism context: every
    /// parallel iterator, `join`, or `scope` reached from inside targets this
    /// pool's workers. Calling `install` from one of this pool's own worker
    /// threads keeps that worker identity, so nested installs help the pool
    /// instead of blocking it.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let inherited = pool::inherited_worker_index(&self.registry);
        let _frame = pool::RegistryGuard::enter(self.registry.clone(), inherited);
        op()
    }

    /// This pool's logical thread count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Spawns `f` as one task on this pool and returns a [`JoinHandle`] to its
    /// result — the handle-returning variant of `rayon::ThreadPool::spawn`
    /// that the host-side prefetch pipeline is built on. The task starts as
    /// soon as a worker is free; `join` blocks until it completes and
    /// re-throws its panic. On a one-thread pool (the sequential fallback) the
    /// closure runs inline before `spawn` returns.
    pub fn spawn<T, F>(&self, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        pool::spawn_task(self.registry.clone(), f)
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.num_threads())
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawns `f` on the pool the calling thread currently targets (the global
/// pool unless inside [`ThreadPool::install`]) and returns a [`JoinHandle`] to
/// its result. Under the `RAYON_NUM_THREADS=1` sequential fallback the closure
/// runs inline on the caller before this returns.
///
/// ```
/// let handle = rayon::spawn(|| 6 * 7);
/// assert_eq!(handle.join(), 42);
/// ```
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    pool::spawn_current(f)
}

/// Mirrors `rayon::current_num_threads`: the thread count of the pool the
/// calling thread currently targets (the global pool unless inside
/// [`ThreadPool::install`]).
pub fn current_num_threads() -> usize {
    pool::current_num_threads()
}

/// Mirrors `rayon::current_thread_index`: the calling thread's worker index
/// within its pool, or `None` when called from outside any worker.
pub fn current_thread_index() -> Option<usize> {
    pool::current_thread_index()
}

/// Mirrors `rayon::join`: runs both closures, potentially in parallel — the
/// second becomes a stealable task while the caller runs the first, then the
/// caller helps the pool until both are done. Panics propagate after both
/// closures have finished.
///
/// ```
/// let (a, b) = rayon::join(|| 2 + 2, || "ok");
/// assert_eq!((a, b), (4, "ok"));
/// ```
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(oper_a, oper_b)
}

/// Mirrors `rayon::scope`: spawn tasks that may borrow from the enclosing
/// frame; the call returns once every spawned task (including nested spawns)
/// has completed.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let counter = AtomicUsize::new(0);
/// rayon::scope(|s| {
///     for _ in 0..8 {
///         s.spawn(|_| {
///             counter.fetch_add(1, Ordering::Relaxed);
///         });
///     }
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 8);
/// ```
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    pool::scope(op)
}
