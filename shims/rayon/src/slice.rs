//! Parallel slice extensions, mirroring `rayon::slice::ParallelSlice`.

use crate::iter::ParIter;

/// Parallel chunking of slices: `par_chunks(n)` yields `&[T]` windows of up
/// to `n` elements, in order, processed across the pool like any other
/// parallel iterator.
pub trait ParallelSlice<T: Sync> {
    /// Parallel equivalent of `slice::chunks`: every chunk has `chunk_size`
    /// elements except possibly the last. Panics if `chunk_size` is zero.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size != 0, "par_chunks: chunk size must be non-zero");
        ParIter::from_vec(self.chunks(chunk_size).collect())
    }
}
