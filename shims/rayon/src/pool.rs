//! The work-stealing execution engine behind the rayon facade.
//!
//! # Architecture
//!
//! A [`Registry`] owns the shared state of one thread pool:
//!
//! * a **global injector** queue, where threads that are not pool workers
//!   (e.g. the main thread, or a thread `install`ed into another pool) push
//!   work;
//! * one **deque per worker**, used with the Chase–Lev discipline — the owning
//!   worker pushes and pops at the back (LIFO, cache-friendly for nested
//!   operations), thieves steal from the front (FIFO, oldest work first). The
//!   deques are `Mutex<VecDeque>`s rather than lock-free buffers: tasks are
//!   coarse chunks, so queue operations are nowhere near the critical path and
//!   correctness wins over atomics micro-optimisation in an offline shim;
//! * a sleep mutex + condvar so idle workers block instead of spinning, with
//!   the shutdown flag stored under the same mutex so wakeups cannot be missed.
//!
//! Workers are real `std::thread`s. The **global registry** is sized from
//! `RAYON_NUM_THREADS` (like real rayon) falling back to
//! `std::thread::available_parallelism`; `RAYON_NUM_THREADS=1` is the
//! sequential debugging fallback — no workers are spawned and every operation
//! runs inline on the caller. Pool-local registries (via
//! [`crate::ThreadPoolBuilder`]) size themselves explicitly.
//!
//! # Blocking and nesting
//!
//! Every parallel operation is synchronous: the thread that starts it enqueues
//! tasks and waits for the operation's latch. A **pool worker** that waits
//! (because a task hit a nested `join` or parallel iterator) *helps* — it
//! executes queued tasks in the meantime — so nesting cannot deadlock the
//! pool. A **non-worker** caller (the main thread, or a thread inside
//! `ThreadPool::install`) blocks on the latch instead of stealing work, so a
//! pool configured with `num_threads(n)` computes on exactly `n` threads —
//! the thread-count rows of the reproduced tables mean what they say.
//!
//! # Panics
//!
//! Task bodies run under `catch_unwind`; the first panic payload of an
//! operation is stored in its latch and re-thrown on the thread that started
//! the operation once every task of that operation has finished, mirroring
//! rayon's semantics.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// Queue-transition points the schedule-permutation layer can perturb.
///
/// The enum is part of the pool's permanent vocabulary — every transition
/// names its point when it calls [`Registry::sched`] — but the perturbation
/// logic behind those calls only exists under `cfg(test)` /
/// `--cfg gk_schedules` (see `crate::schedule`). In ordinary builds the hook
/// is an empty inlined function and the whole layer costs nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SchedPoint {
    /// A task is about to be enqueued (own deque or injector).
    Push,
    /// A worker is about to pop from the back of its own deque.
    PopOwn,
    /// A thread is about to pop from the front of the injector.
    PopInjector,
    /// A thief is about to attempt one steal from a victim deque.
    Steal,
    /// One iteration of a help-while-waiting loop.
    HelpWait,
    /// One iteration of a worker's main loop.
    WorkerLoop,
}

/// A unit of erased work.
///
/// Tasks are boxed closures whose borrows have been lifetime-erased to
/// `'static` (see [`erase_task`]): the operation that enqueued them always
/// blocks until its latch has counted every task complete before returning, so
/// everything a task borrows from the enqueuing stack frame outlives every
/// execution of it.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// First panic payload captured by an operation.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Erases the lifetime of a task closure so it can sit in a queue shared with
/// `'static` worker threads.
///
/// # Safety
///
/// The transmute changes only the lifetime parameter of the trait object: the
/// vtable and the data pointer are untouched, so the result is bit-identical
/// to the input. What the caller promises is temporal: **no borrow captured by
/// the closure may be invalidated until the task has finished executing** —
/// not merely been popped, *finished*, including its panic path.
///
/// Every call site in this module discharges that obligation the same way:
/// the erased task reports to an [`OpLatch`] as the last thing it does (the
/// `complete` call sits after the closure body, inside the task wrapper), and
/// the frame that owns the borrows blocks on that latch before returning —
/// `run_parallel` and `join` via [`Registry::help_until`], [`Scope::spawn`]
/// via the latch wait in [`scope`]'s epilogue. The scope path additionally
/// counts spawned vs. completed tasks and `debug_assert_eq!`s them once the
/// latch is down, so a bookkeeping bug that would break this contract trips
/// loudly in debug/test builds instead of silently dangling.
unsafe fn erase_task<'a>(task: Box<dyn FnOnce() + Send + 'a>) -> Task {
    // SAFETY: sound per the contract above; only the lifetime is transmuted.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Task>(task) }
}

/// Completion latch for one parallel operation: an outstanding-task counter
/// plus the first captured panic.
pub(crate) struct OpLatch {
    progress: Mutex<Progress>,
    cv: Condvar,
}

struct Progress {
    remaining: usize,
    panic: Option<PanicPayload>,
}

impl OpLatch {
    fn new(tasks: usize) -> OpLatch {
        OpLatch {
            progress: Mutex::new(Progress {
                remaining: tasks,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers one more outstanding task (used by [`Scope::spawn`]).
    fn add_one(&self) {
        self.progress.lock().unwrap().remaining += 1;
    }

    /// Marks one task complete, recording its panic payload if it is the
    /// operation's first.
    fn complete(&self, panic: Option<PanicPayload>) {
        let mut progress = self.progress.lock().unwrap();
        progress.remaining -= 1;
        if progress.panic.is_none() {
            if let Some(payload) = panic {
                progress.panic = Some(payload);
            }
        }
        if progress.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.progress.lock().unwrap().remaining == 0
    }

    /// Blocks until the latch completes (for non-worker callers, which do not
    /// steal work: the computation stays on the pool's own threads).
    fn wait_done(&self) {
        let mut progress = self.progress.lock().unwrap();
        while progress.remaining > 0 {
            progress = self.cv.wait(progress).unwrap();
        }
    }

    /// Parks briefly until either the latch completes or the timeout elapses
    /// (the caller re-scans for stealable work in between).
    fn wait_briefly(&self) {
        let progress = self.progress.lock().unwrap();
        if progress.remaining > 0 {
            let _ = self
                .cv
                .wait_timeout(progress, Duration::from_micros(200))
                .unwrap();
        }
    }

    fn take_panic(&self) -> Option<PanicPayload> {
        self.progress.lock().unwrap().panic.take()
    }

    /// Re-throws the operation's first panic, if any. Only call after the
    /// latch is done.
    fn propagate_panic(&self) {
        if let Some(payload) = self.take_panic() {
            panic::resume_unwind(payload);
        }
    }
}

/// Shared state of one thread pool.
pub(crate) struct Registry {
    /// Logical thread count. `<= 1` means sequential fallback (no workers).
    num_threads: usize,
    /// Queue for work pushed by non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques (empty vector in sequential fallback mode).
    workers: Vec<Mutex<VecDeque<Task>>>,
    /// Shutdown flag; guarded by the sleep mutex so workers cannot miss it.
    sleep: Mutex<bool>,
    wake_cv: Condvar,
    /// Loom-lite schedule controller: when set, every queue transition calls
    /// into it so the schedule suite can yield/sleep/shuffle its way through
    /// push/steal/join interleavings. `None` for all production registries.
    #[cfg(any(test, gk_schedules))]
    schedule: Option<Arc<crate::schedule::Controller>>,
}

thread_local! {
    /// Stack of (registry, worker index) contexts for the current thread.
    ///
    /// A worker thread starts with its own registry at the bottom and never
    /// pops it; `ThreadPool::install` pushes a (pool registry, worker index)
    /// frame on top for its duration — the index is `None` unless the caller
    /// is already a worker of that same pool (see [`inherited_worker_index`]).
    static CURRENT: RefCell<Vec<(Arc<Registry>, Option<usize>)>> =
        const { RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// Thread count requested by `RAYON_NUM_THREADS`, if set to a positive number.
fn env_num_threads() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Default thread count: env override, else the machine's parallelism.
pub(crate) fn default_num_threads() -> usize {
    env_num_threads().unwrap_or_else(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The process-wide registry used when no pool is installed.
pub(crate) fn global_registry() -> Arc<Registry> {
    GLOBAL
        .get_or_init(|| {
            let (registry, handles) = Registry::spawn(default_num_threads(), "rayon-worker");
            // The global pool lives for the whole process; detach the workers.
            drop(handles);
            registry
        })
        .clone()
}

/// The registry parallel operations on this thread currently target.
pub(crate) fn current_registry() -> Arc<Registry> {
    CURRENT
        .with(|current| {
            current
                .borrow()
                .last()
                .map(|(registry, _)| registry.clone())
        })
        .unwrap_or_else(global_registry)
}

/// The calling thread's worker index within `registry`, if it is one of its
/// workers acting as such right now.
fn current_worker_index(registry: &Arc<Registry>) -> Option<usize> {
    CURRENT.with(|current| {
        current.borrow().last().and_then(|(r, index)| {
            if Arc::ptr_eq(r, registry) {
                *index
            } else {
                None
            }
        })
    })
}

/// The calling thread's worker index within `registry`, looking through any
/// stacked `install` frames. Used when entering an `install` frame for a pool:
/// a worker re-installing its own pool must keep its worker identity, so it
/// helps (and pushes to its own deque) instead of blocking — otherwise two
/// workers both re-installing the pool could deadlock it.
pub(crate) fn inherited_worker_index(registry: &Arc<Registry>) -> Option<usize> {
    CURRENT.with(|current| {
        current.borrow().iter().rev().find_map(|(r, index)| {
            if Arc::ptr_eq(r, registry) {
                *index
            } else {
                None
            }
        })
    })
}

/// RAII frame pushed by `install` (and worker startup) onto [`CURRENT`].
pub(crate) struct RegistryGuard;

impl RegistryGuard {
    pub(crate) fn enter(registry: Arc<Registry>, worker: Option<usize>) -> RegistryGuard {
        CURRENT.with(|current| current.borrow_mut().push((registry, worker)));
        RegistryGuard
    }
}

impl Drop for RegistryGuard {
    fn drop(&mut self) {
        CURRENT.with(|current| {
            current.borrow_mut().pop();
        });
    }
}

impl Registry {
    /// Builds the shared state for a pool of `num_threads` (no worker deques
    /// when `num_threads <= 1`: that is the sequential fallback).
    fn new_state(num_threads: usize) -> Registry {
        let workers = if num_threads >= 2 { num_threads } else { 0 };
        Registry {
            num_threads: num_threads.max(1),
            injector: Mutex::new(VecDeque::new()),
            workers: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(false),
            wake_cv: Condvar::new(),
            #[cfg(any(test, gk_schedules))]
            schedule: None,
        }
    }

    /// Spawns one OS thread per worker deque of `registry`.
    fn start_workers(registry: &Arc<Registry>, name_prefix: &str) -> Vec<thread::JoinHandle<()>> {
        (0..registry.workers.len())
            .map(|index| {
                let registry = registry.clone();
                thread::Builder::new()
                    .name(format!("{name_prefix}-{index}"))
                    .spawn(move || worker_loop(registry, index))
                    .expect("failed to spawn pool worker thread")
            })
            .collect()
    }

    /// Creates a registry and spawns its workers (none when `num_threads <= 1`:
    /// that is the sequential fallback).
    pub(crate) fn spawn(
        num_threads: usize,
        name_prefix: &str,
    ) -> (Arc<Registry>, Vec<thread::JoinHandle<()>>) {
        let registry = Arc::new(Self::new_state(num_threads));
        let handles = Self::start_workers(&registry, name_prefix);
        (registry, handles)
    }

    /// Like [`Registry::spawn`] but with a schedule controller attached: every
    /// queue transition of this pool reports to `controller`, which perturbs
    /// thread timing and steal order to drive the pool through adversarial
    /// interleavings. Test layer only.
    #[cfg(any(test, gk_schedules))]
    pub(crate) fn spawn_scheduled(
        num_threads: usize,
        name_prefix: &str,
        controller: Arc<crate::schedule::Controller>,
    ) -> (Arc<Registry>, Vec<thread::JoinHandle<()>>) {
        let mut state = Self::new_state(num_threads);
        state.schedule = Some(controller);
        let registry = Arc::new(state);
        let handles = Self::start_workers(&registry, name_prefix);
        (registry, handles)
    }

    /// Schedule-permutation hook: forwards `point` to the attached controller,
    /// if any. Compiles to an empty inlined function outside the test layer.
    #[inline]
    fn sched(&self, point: SchedPoint) {
        #[cfg(any(test, gk_schedules))]
        if let Some(controller) = &self.schedule {
            controller.perturb(point);
        }
        #[cfg(not(any(test, gk_schedules)))]
        let _ = point;
    }

    /// Logical thread count of this pool.
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// True when this registry executes everything inline on the caller.
    pub(crate) fn is_sequential(&self) -> bool {
        self.workers.is_empty()
    }

    /// Enqueues a task: onto the calling worker's own deque when the caller is
    /// a worker of this registry, onto the injector otherwise. Wakes one
    /// sleeper per task (the notify happens under the sleep mutex, which every
    /// worker re-checks queues under before waiting, so no wakeup is lost).
    fn push(self: &Arc<Self>, task: Task) {
        self.sched(SchedPoint::Push);
        match current_worker_index(self) {
            Some(index) => self.workers[index].lock().unwrap().push_back(task),
            None => self.injector.lock().unwrap().push_back(task),
        }
        let _sleep = self.sleep.lock().unwrap();
        self.wake_cv.notify_one();
    }

    /// Pops or steals the next task: own deque back (LIFO), then injector
    /// front, then the other workers' fronts (FIFO steals).
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(index) = me {
            self.sched(SchedPoint::PopOwn);
            if let Some(task) = self.workers[index].lock().unwrap().pop_back() {
                return Some(task);
            }
        }
        self.sched(SchedPoint::PopInjector);
        if let Some(task) = self.injector.lock().unwrap().pop_front() {
            return Some(task);
        }
        let victims = self.workers.len();
        let start = me.map_or(0, |index| index + 1);
        // The schedule layer may rotate the victim scan to a different start
        // so steal races are not limited to the default round-robin order.
        #[cfg(any(test, gk_schedules))]
        let start = match &self.schedule {
            Some(controller) => controller.steal_start(start, victims),
            None => start,
        };
        for offset in 0..victims {
            let victim = (start + offset) % victims;
            if Some(victim) == me {
                continue;
            }
            self.sched(SchedPoint::Steal);
            if let Some(task) = self.workers[victim].lock().unwrap().pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// Any queued task visible? (Used to re-check before sleeping.)
    fn has_visible_work(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.workers
            .iter()
            .any(|queue| !queue.lock().unwrap().is_empty())
    }

    /// Waits until `latch` completes. Workers of this registry help — they
    /// execute queued tasks in the meantime, which is what makes nested
    /// parallelism deadlock-free. Non-worker callers block on the latch so the
    /// computation stays on exactly the pool's configured threads.
    fn help_until(self: &Arc<Self>, latch: &OpLatch) {
        let me = match current_worker_index(self) {
            Some(index) => index,
            None => return latch.wait_done(),
        };
        loop {
            self.sched(SchedPoint::HelpWait);
            if latch.is_done() {
                return;
            }
            match self.find_task(Some(me)) {
                Some(task) => task(),
                None => latch.wait_briefly(),
            }
        }
    }

    /// Steals one task from the worker deques only (front = FIFO), never from
    /// the injector. Used by joining non-workers: deque entries are the *sub*
    /// tasks of operations already running on a worker, so they are small and
    /// finish quickly, while the injector holds whole top-level tasks (a
    /// complete prefetch encode, a future parallel operation) that would trap
    /// the joiner long past its own latch completing.
    fn steal_subtask(&self) -> Option<Task> {
        for queue in &self.workers {
            self.sched(SchedPoint::Steal);
            if let Some(task) = queue.lock().unwrap().pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// Waits until `latch` completes, executing queued work in the meantime
    /// **even when the caller is not a pool worker**. This is the wait used by
    /// `JoinHandle::join`: a thread that blocks on a spawned task donates its
    /// cycles to the pool instead of idling, which is what lets a prefetch
    /// pipeline (caller consuming chunk *i*, pool producing chunk *i+1*) keep
    /// every core busy on machines with no spare workers. A worker of this
    /// registry helps normally (own deque, injector, steals); a non-worker
    /// only steals deque subtasks so it cannot get stuck inside an unrelated
    /// top-level task. Parallel-iterator waits keep the stricter
    /// [`Registry::help_until`] behaviour so a pool configured with
    /// `num_threads(n)` still computes on exactly `n` threads.
    fn help_any_until(self: &Arc<Self>, latch: &OpLatch) {
        let me = current_worker_index(self);
        loop {
            self.sched(SchedPoint::HelpWait);
            if latch.is_done() {
                return;
            }
            let task = match me {
                Some(_) => self.find_task(me),
                None => self.steal_subtask(),
            };
            match task {
                Some(task) => task(),
                None => latch.wait_briefly(),
            }
        }
    }

    /// Signals workers to exit once the queues drain.
    pub(crate) fn shutdown(&self) {
        *self.sleep.lock().unwrap() = true;
        self.wake_cv.notify_all();
    }
}

/// Main loop of one worker thread.
fn worker_loop(registry: Arc<Registry>, index: usize) {
    let _frame = RegistryGuard::enter(registry.clone(), Some(index));
    loop {
        registry.sched(SchedPoint::WorkerLoop);
        if let Some(task) = registry.find_task(Some(index)) {
            task();
            continue;
        }
        let sleep = registry.sleep.lock().unwrap();
        if *sleep {
            return;
        }
        // Re-check under the sleep mutex: every push notifies under this same
        // mutex, so either we see the new task here or the notify reaches our
        // wait — idle workers can block indefinitely without polling.
        if registry.has_visible_work() {
            continue;
        }
        let sleep = registry.wake_cv.wait(sleep).unwrap();
        if *sleep {
            return;
        }
    }
}

/// Runs `body(0..tasks)` with each index as one stealable task, blocking until
/// all complete. Panics in any task are re-thrown here after the last task
/// finishes. This is the primitive the parallel iterators drive.
pub(crate) fn run_parallel<F>(tasks: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if tasks == 0 {
        return;
    }
    let registry = current_registry();
    if registry.is_sequential() || tasks == 1 {
        for index in 0..tasks {
            body(index);
        }
        return;
    }
    let latch = OpLatch::new(tasks);
    for index in 0..tasks {
        let latch = &latch;
        let body = &body;
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| body(index)));
            latch.complete(outcome.err());
        });
        // SAFETY: `help_until` below does not return before the latch has
        // counted every task complete, so `body` and `latch` outlive all uses.
        registry.push(unsafe { erase_task(task) });
    }
    registry.help_until(&latch);
    latch.propagate_panic();
}

/// Work-stealing `join`: `oper_b` becomes a stealable task while the calling
/// thread runs `oper_a`, then helps until `oper_b` is done. Both closures'
/// panics propagate (after both have finished).
pub(crate) fn join<A, RA, B, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    RA: Send,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let registry = current_registry();
    if registry.is_sequential() {
        return (oper_a(), oper_b());
    }
    let latch = OpLatch::new(1);
    let b_result: Mutex<Option<RB>> = Mutex::new(None);
    {
        let latch_ref = &latch;
        let b_result_ref = &b_result;
        let task: Box<dyn FnOnce() + Send + '_> =
            Box::new(
                move || match panic::catch_unwind(AssertUnwindSafe(oper_b)) {
                    Ok(value) => {
                        *b_result_ref.lock().unwrap() = Some(value);
                        latch_ref.complete(None);
                    }
                    Err(payload) => latch_ref.complete(Some(payload)),
                },
            );
        // SAFETY: the latch is waited on below before this frame returns.
        registry.push(unsafe { erase_task(task) });
    }
    let a_outcome = panic::catch_unwind(AssertUnwindSafe(oper_a));
    registry.help_until(&latch);
    match a_outcome {
        Ok(ra) => {
            latch.propagate_panic();
            let rb = b_result
                .into_inner()
                .unwrap()
                .expect("join: task finished without result or panic");
            (ra, rb)
        }
        Err(payload) => {
            // `a` panicked: drop b's panic (rayon reports the first panic it
            // sees; we deterministically prefer a's) and re-throw.
            drop(latch.take_panic());
            panic::resume_unwind(payload);
        }
    }
}

/// Handle to one fire-and-join task spawned with `spawn_task`: joining blocks
/// until the task has run (helping the pool if the caller is one of its
/// workers), re-throws the task's panic, and returns its result.
pub struct JoinHandle<T> {
    registry: Arc<Registry>,
    latch: Arc<OpLatch>,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("finished", &self.latch.is_done())
            .finish()
    }
}

impl<T: Send + 'static> JoinHandle<T> {
    /// True once the task has finished (successfully or by panicking).
    pub fn is_finished(&self) -> bool {
        self.latch.is_done()
    }

    /// Waits for the task and returns its result, re-throwing its panic. The
    /// joining thread executes queued pool work while it waits (whether or not
    /// it is a pool worker), so join-based pipelines stay fully utilized even
    /// when every worker is busy.
    pub fn join(self) -> T {
        self.registry.help_any_until(&self.latch);
        self.latch.propagate_panic();
        self.result
            .lock()
            .unwrap()
            .take()
            .expect("spawned task finished without result or panic")
    }
}

/// Spawns `f` as one stealable task on `registry` and returns a handle to its
/// result. On a sequential registry (the `RAYON_NUM_THREADS=1` fallback) the
/// task runs inline on the caller before the handle is returned, so spawn-based
/// pipelines degrade to plain serial execution.
pub(crate) fn spawn_task<T, F>(registry: Arc<Registry>, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let latch = Arc::new(OpLatch::new(1));
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    if registry.is_sequential() {
        match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(value) => {
                *result.lock().unwrap() = Some(value);
                latch.complete(None);
            }
            Err(payload) => latch.complete(Some(payload)),
        }
        return JoinHandle {
            registry,
            latch,
            result,
        };
    }
    let task_latch = latch.clone();
    let task_result = result.clone();
    registry.push(Box::new(move || {
        match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(value) => {
                *task_result.lock().unwrap() = Some(value);
                task_latch.complete(None);
            }
            Err(payload) => task_latch.complete(Some(payload)),
        }
    }));
    JoinHandle {
        registry,
        latch,
        result,
    }
}

/// Spawns `f` on the registry parallel operations on this thread currently
/// target (the backing of the top-level `rayon::spawn`).
pub(crate) fn spawn_current<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    spawn_task(current_registry(), f)
}

/// A scope for spawning borrowed tasks, mirroring `rayon::scope`.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    latch: OpLatch,
    /// Tasks handed to [`Scope::spawn`], paired with `completed` to
    /// debug-assert the [`erase_task`] contract in [`scope`]'s epilogue:
    /// every erased closure must have finished before `'scope` borrows die.
    spawned: AtomicUsize,
    /// Tasks whose closure (including its panic path) has finished.
    completed: AtomicUsize,
    /// Invariant over `'scope`, as in rayon.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task that may borrow from outside the scope. The task becomes
    /// stealable immediately; the surrounding [`scope`](crate::scope) call waits for it.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.latch.add_one();
        // Relaxed: the counters are reconciled only after the latch wait in
        // `scope`'s epilogue, whose mutex release/acquire pairs order every
        // increment before the final loads; no other ordering is needed.
        self.spawned.fetch_add(1, Ordering::Relaxed);
        if self.registry.is_sequential() {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(self)));
            // Relaxed: inline execution, same thread as the epilogue's loads.
            self.completed.fetch_add(1, Ordering::Relaxed);
            self.latch.complete(outcome.err());
            return;
        }
        let scope_ref: &Scope<'scope> = self;
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(scope_ref)));
            // Relaxed: ordered before the epilogue's load by the latch mutex
            // (this increment happens-before `complete`, which happens-before
            // the waiter observing `remaining == 0`).
            scope_ref.completed.fetch_add(1, Ordering::Relaxed);
            scope_ref.latch.complete(outcome.err());
        });
        // SAFETY: `scope` waits on this latch before the `Scope` (and anything
        // `'scope` borrows) can be invalidated; the task increments `completed`
        // and reports to the latch as its final acts, so the epilogue's
        // spawned == completed debug-assert rechecks exactly this contract.
        self.registry.push(unsafe { erase_task(task) });
    }
}

/// Creates a scope, runs `body` in it, and blocks until every task spawned
/// (transitively) inside has completed. The first panic — from the body or any
/// task — is re-thrown after all tasks finish, mirroring `rayon::scope`.
pub(crate) fn scope<'scope, OP, R>(body: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        registry: current_registry(),
        latch: OpLatch::new(0),
        spawned: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        _marker: PhantomData,
    };
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| body(&scope)));
    scope.registry.help_until(&scope.latch);
    // The erase_task contract for scope tasks: every closure whose `'scope`
    // borrows die when this frame returns must already have finished. The
    // latch wait above synchronizes-with each task's completion, so these
    // Relaxed loads observe the final counts.
    debug_assert_eq!(
        // Relaxed: see above — the latch wait orders every increment first.
        scope.spawned.load(Ordering::Relaxed),
        // Relaxed: same; both counters are quiescent once the latch is down.
        scope.completed.load(Ordering::Relaxed),
        "scope epilogue: every spawned task must complete before 'scope ends",
    );
    let task_panic = scope.latch.take_panic();
    match outcome {
        Err(payload) => panic::resume_unwind(payload),
        Ok(result) => {
            if let Some(payload) = task_panic {
                panic::resume_unwind(payload);
            }
            result
        }
    }
}

/// Number of threads parallel operations on this thread currently fan out to.
pub(crate) fn current_num_threads() -> usize {
    current_registry().num_threads()
}

/// Worker index of the calling thread in its current pool, `None` off-pool.
pub(crate) fn current_thread_index() -> Option<usize> {
    let registry = current_registry();
    current_worker_index(&registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn latch_counts_down_and_captures_first_panic() {
        let latch = OpLatch::new(2);
        assert!(!latch.is_done());
        latch.complete(Some(Box::new("first")));
        latch.complete(Some(Box::new("second")));
        assert!(latch.is_done());
        let payload = latch.take_panic().expect("panic captured");
        assert_eq!(*payload.downcast::<&str>().unwrap(), "first");
    }

    #[test]
    fn sequential_registry_runs_inline() {
        let (registry, handles) = Registry::spawn(1, "test-seq");
        assert!(handles.is_empty());
        assert!(registry.is_sequential());
        let _frame = RegistryGuard::enter(registry, None);
        let counter = AtomicUsize::new(0);
        run_parallel(10, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn find_task_prefers_own_deque_then_injector() {
        let (registry, handles) = Registry::spawn(1, "test-find");
        drop(handles);
        // Sequential registry: no worker deques, injector only.
        registry.injector.lock().unwrap().push_back(Box::new(|| {}));
        assert!(registry.find_task(None).is_some());
        assert!(registry.find_task(None).is_none());
    }
}
